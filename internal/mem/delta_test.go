package mem_test

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// imagesEqual compares two images over the union of their page sets,
// byte for byte.
func imagesEqual(t *testing.T, what string, got, want *mem.Image) {
	t.Helper()
	gm, wm := got.NewMemory(), want.NewMemory()
	nums := map[uint64]bool{}
	for _, n := range gm.Pages() {
		nums[n] = true
	}
	for _, n := range wm.Pages() {
		nums[n] = true
	}
	gb := make([]byte, mem.PageSize)
	wb := make([]byte, mem.PageSize)
	for n := range nums {
		gm.ReadBytes(n*mem.PageSize, gb)
		wm.ReadBytes(n*mem.PageSize, wb)
		for i := range gb {
			if gb[i] != wb[i] {
				t.Fatalf("%s: memory differs at %#x: %#x vs %#x", what, n*mem.PageSize+uint64(i), gb[i], wb[i])
			}
		}
	}
}

// TestDeltaChainReproducesImage is the dirty-page journal's soundness
// property: under randomized write traffic (mixed widths, page-crossing
// accesses, fresh pages, re-dirtied pages, bulk writes), a clone of the
// keyframe image advanced by the chain of deltas equals the full
// Snapshot taken at each point, bit for bit.
func TestDeltaChainReproducesImage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		m := mem.New()
		// Initial population (pre-keyframe writes are not part of any
		// delta; the keyframe carries them).
		for i := 0; i < 200; i++ {
			m.Write64(rng.Uint64()%(64*mem.PageSize), rng.Uint64())
		}

		keyframe := m.Snapshot()
		seq := m.Seq()
		tracked := keyframe.Clone()

		for step := 0; step < 20; step++ {
			writes := rng.Intn(40)
			for i := 0; i < writes; i++ {
				// Mix page-local, page-crossing, far, and bulk writes.
				addr := rng.Uint64() % (80 * mem.PageSize)
				switch rng.Intn(5) {
				case 0:
					m.Write8(addr, uint8(rng.Intn(256)))
				case 1:
					m.Write32(addr, rng.Uint32())
				case 2:
					m.Write64(addr, rng.Uint64())
				case 3:
					m.Write64(addr|0xff9, rng.Uint64()) // straddles a page boundary
				case 4:
					buf := make([]byte, 1+rng.Intn(3*mem.PageSize))
					rng.Read(buf)
					m.WriteBytes(addr, buf)
				}
				// Interleave reads so the page cache state varies.
				_ = m.Read64(addr)
			}

			d, err := m.Delta(seq)
			if err != nil {
				t.Fatal(err)
			}
			if d.Since != seq || d.Seq != seq+1 {
				t.Fatalf("delta chain numbers: %d->%d after %d", d.Since, d.Seq, seq)
			}
			seq = d.Seq
			if err := tracked.Apply(d); err != nil {
				t.Fatal(err)
			}
			imagesEqual(t, "tracked chain", tracked, m.Snapshot())
			// The Snapshot above started a new chain link; re-anchor.
			seq = m.Seq()
		}
	}
}

// TestDeltaDoesNotAliasLiveState verifies a delta's pages are frozen at
// capture: writes after the delta must not leak into it (the delta
// point marks its pages copy-on-write).
func TestDeltaDoesNotAliasLiveState(t *testing.T) {
	m := mem.New()
	m.Write64(0x1000, 1)
	base := m.Snapshot()
	m.Write64(0x1000, 2)
	d, err := m.Delta(m.Seq())
	if err != nil {
		t.Fatal(err)
	}
	m.Write64(0x1000, 3) // must copy-on-write, not mutate the delta's page
	at := base.Clone()
	if err := at.Apply(d); err != nil {
		t.Fatal(err)
	}
	if got := at.NewMemory().Read64(0x1000); got != 2 {
		t.Fatalf("delta page mutated after capture: read %d, want 2", got)
	}
	if got := m.Read64(0x1000); got != 3 {
		t.Fatalf("live memory lost its write: read %d, want 3", got)
	}
}

// TestDeltaSequencing pins the chain discipline: deltas before any
// snapshot, against stale baselines, or across Reset must fail.
func TestDeltaSequencing(t *testing.T) {
	m := mem.New()
	if _, err := m.Delta(0); err == nil {
		t.Fatal("delta before first snapshot must fail")
	}
	m.Snapshot()
	first := m.Seq()
	if _, err := m.Delta(first + 1); err == nil {
		t.Fatal("future baseline must fail")
	}
	if _, err := m.Delta(first); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Delta(first); err == nil {
		t.Fatal("stale baseline must fail")
	}
	m.Reset()
	if _, err := m.Delta(m.Seq()); err == nil {
		t.Fatal("delta across Reset must fail")
	}
	m.Snapshot() // a fresh keyframe restarts the chain
	if _, err := m.Delta(m.Seq()); err != nil {
		t.Fatal(err)
	}
}

// TestApplyRejectsCorruptDelta covers the validation path deserialized
// deltas rely on.
func TestApplyRejectsCorruptDelta(t *testing.T) {
	img := mem.ImageFromPages(nil).Clone()
	page := new([mem.PageSize]byte)
	for _, d := range []*mem.Delta{
		{Nums: []uint64{1}, Pages: nil},
		{Nums: []uint64{2, 1}, Pages: []*[mem.PageSize]byte{page, page}},
		{Nums: []uint64{1, 1}, Pages: []*[mem.PageSize]byte{page, page}},
		{Nums: []uint64{1}, Pages: []*[mem.PageSize]byte{nil}},
	} {
		if err := img.Apply(d); err == nil {
			t.Fatalf("corrupt delta %+v applied without error", d)
		}
	}
}

// TestJournalZeroAllocSteadyState pins the write fast paths to zero
// allocations with an open delta chain: journaling happens only when a
// page transitions to writable, never per store.
func TestJournalZeroAllocSteadyState(t *testing.T) {
	m := mem.New()
	m.Write64(0x1000, 1)
	m.Snapshot()
	m.Write64(0x1000, 2) // copy-on-write + journal the page once
	allocs := testing.AllocsPerRun(1000, func() {
		m.Write64(0x1008, 42)
		if m.Read64(0x1008) != 42 {
			t.Fatal("readback mismatch")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state writes under an open chain allocate %.1f objects/op; want 0", allocs)
	}
}
