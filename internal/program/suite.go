package program

import "fmt"

// The synthetic benchmark suite. Each entry is an archetype of a SPEC
// CPU2000 benchmark's dominant behaviour (the Model field); together they
// span the CPI-variance space the SMARTS paper samples: memory-bound
// pointer chasing, cache-resident integer code, FP streaming, hard
// branches, phased mixtures, and indirect dispatch.
//
// Working-set sizes are chosen against the paper's Table 3 hierarchies
// (L1D 32-64 KB, L2 1-2 MB): kernels sit below L1, between L1 and L2, or
// beyond L2 so that warming state matters to differing degrees — the
// property Table 4 of the paper buckets benchmarks by.

// Suite returns the specs of all workloads in deterministic order.
func Suite() []Spec {
	return []Spec{
		{
			Name: "swimx", Model: "swim", Seed: 101,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KStream, WS: 4 << 20, Iters: 8000, FP: true, Store: true, Persist: true},
			}}},
		},
		{
			Name: "mcfx", Model: "mcf", Seed: 102,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KPChase, WS: 4 << 20, Iters: 4000, Work: 1},
				{Kind: KBranchy, WS: 64 << 10, Iters: 1000, Bias: 0.55, Persist: true},
			}}},
		},
		{
			Name: "twolfx", Model: "twolf", Seed: 103,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KPChase, WS: 256 << 10, Iters: 3000, Work: 2},
				{Kind: KBranchy, WS: 32 << 10, Iters: 800, Bias: 0.7, Persist: true},
				{Kind: KCompInt, Chains: 3, Iters: 1000},
			}}},
		},
		{
			Name: "gccx", Model: "gcc-2", Seed: 104,
			Sections: []Section{
				{Share: 0.5, Kernels: []Kernel{
					{Kind: KCompInt, Chains: 4, Iters: 2000},
					{Kind: KBranchy, WS: 128 << 10, Iters: 1500, Pattern: 12, Noise: 0.05, Persist: true},
					{Kind: KSwitchy, WS: 64 << 10, Iters: 1000, Handlers: 8, Persist: true},
				}},
				{Share: 0.5, Kernels: []Kernel{
					{Kind: KPChase, WS: 1 << 20, Iters: 2500, Work: 1},
					{Kind: KStream, WS: 512 << 10, Iters: 3000, Persist: true},
					{Kind: KBranchy, WS: 64 << 10, Iters: 1200, Bias: 0.5, Persist: true},
				}},
			},
		},
		{
			Name: "craftyx", Model: "crafty", Seed: 105,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KBranchy, WS: 64 << 10, Iters: 2500, Pattern: 16, Noise: 0.1, Persist: true},
				{Kind: KCompInt, Chains: 4, Iters: 2000},
				{Kind: KStream, WS: 16 << 10, Iters: 1500},
			}}},
		},
		{
			Name: "eonx", Model: "eon-1", Seed: 106,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KCompInt, Chains: 5, Iters: 3000},
				{Kind: KCompFP, Chains: 4, Iters: 2500},
				{Kind: KStream, WS: 8 << 10, Iters: 1000, Fn: true},
			}}},
		},
		{
			Name: "applux", Model: "applu", Seed: 107,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KStencil, WS: 2 << 20, Iters: 3000, Persist: true},
				{Kind: KReduce, WS: 1 << 20, Iters: 2000, Persist: true},
			}}},
		},
		{
			Name: "mgridx", Model: "mgrid", Seed: 108,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KStencil, WS: 8 << 20, Iters: 6000, Persist: true},
			}}},
		},
		{
			Name: "ammpx", Model: "ammp", Seed: 109,
			Sections: []Section{
				{Share: 0.4, Kernels: []Kernel{
					{Kind: KCompFP, Chains: 5, Iters: 3000, Div: true},
				}},
				{Share: 0.3, Kernels: []Kernel{
					{Kind: KPChase, WS: 2 << 20, Iters: 3500},
				}},
				{Share: 0.3, Kernels: []Kernel{
					{Kind: KStencil, WS: 512 << 10, Iters: 2500, Persist: true},
				}},
			},
		},
		{
			Name: "vprx", Model: "vpr-route", Seed: 110,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KBranchy, WS: 128 << 10, Iters: 2000, Bias: 0.6, Persist: true},
				{Kind: KPChase, WS: 512 << 10, Iters: 2000, Work: 1},
				{Kind: KCompInt, Chains: 3, Iters: 1500},
			}}},
		},
		{
			Name: "parserx", Model: "parser", Seed: 111,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KPChase, WS: 128 << 10, Iters: 2500, Work: 1},
				{Kind: KBranchy, WS: 256 << 10, Iters: 2000, Bias: 0.5, Persist: true},
				{Kind: KSwitchy, WS: 32 << 10, Iters: 800, Handlers: 16, Persist: true},
			}}},
		},
		{
			Name: "bzip2x", Model: "bzip2-1", Seed: 112,
			Sections: []Section{
				{Share: 0.6, Kernels: []Kernel{
					{Kind: KStream, WS: 256 << 10, Iters: 2500, Store: true, Persist: true},
					{Kind: KBranchy, WS: 128 << 10, Iters: 1800, Bias: 0.5, Persist: true},
				}},
				{Share: 0.4, Kernels: []Kernel{
					{Kind: KStream, WS: 256 << 10, Iters: 2000, Store: true, Persist: true},
					{Kind: KBranchy, WS: 64 << 10, Iters: 1500, Bias: 0.85, Persist: true},
				}},
			},
		},
		{
			Name: "gzipx", Model: "gzip-1", Seed: 113,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KStream, WS: 128 << 10, Iters: 2000, Store: true, Persist: true},
				{Kind: KBranchy, WS: 64 << 10, Iters: 1500, Bias: 0.65, Persist: true},
				{Kind: KCompInt, Chains: 3, Iters: 1200},
			}}},
		},
		{
			Name: "lucasx", Model: "lucas", Seed: 114,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KReduce, WS: 4 << 20, Iters: 8000, Persist: true},
			}}},
		},
		{
			Name: "facerecx", Model: "facerec", Seed: 115,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KStencil, WS: 1 << 20, Iters: 2500, Persist: true},
				{Kind: KSwitchy, WS: 16 << 10, Iters: 700, Handlers: 8, Fn: true, Persist: true},
			}}},
		},
		{
			Name: "gapx", Model: "gap", Seed: 116,
			Sections: []Section{{Kernels: []Kernel{
				{Kind: KCompInt, Chains: 4, Iters: 2200},
				{Kind: KStream, WS: 2 << 20, Iters: 2600, Persist: true},
				{Kind: KBranchy, WS: 32 << 10, Iters: 1400, Bias: 0.75, Persist: true},
			}}},
		},
	}
}

// Names returns the suite workload names in order.
func Names() []string {
	specs := Suite()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("program: unknown workload %q", name)
}
