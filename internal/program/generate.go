package program

import (
	"fmt"

	"repro/internal/isa"
)

// Section is a sequential region of the workload: an outer loop whose
// body executes every kernel once per iteration. A workload with several
// sections exhibits distinct large-scale program phases (the way gcc or
// bzip2 change behaviour between input regions).
type Section struct {
	// Kernels run in order within one outer-loop iteration.
	Kernels []Kernel
	// Share is the fraction of the total dynamic length given to this
	// section. Shares are normalized over the spec.
	Share float64
}

// Spec declares a synthetic workload.
type Spec struct {
	// Name is the workload identifier used throughout the repo.
	Name string
	// Model names the SPEC CPU2000 benchmark this workload is an
	// archetype of (documentation only).
	Model string
	// Seed drives all data-generation randomness.
	Seed int64
	// Sections list the program's large-scale phases.
	Sections []Section
}

// Outer loop counter registers (one per section, reused sequentially).
const regOuter = isa.Reg(20)

// maxPersistent bounds the number of kernels with persistent cursors.
const maxPersistent = 15

// Generate builds the executable program for spec with a total dynamic
// instruction count as close to targetLen as the outer-loop granularity
// allows (always within one outer-iteration of the target, and at least
// one iteration per section).
func Generate(spec Spec, targetLen uint64) (*Program, error) {
	if len(spec.Sections) == 0 {
		return nil, fmt.Errorf("program %s: no sections", spec.Name)
	}
	if targetLen == 0 {
		return nil, fmt.Errorf("program %s: zero target length", spec.Name)
	}
	a := newAsm(spec.Name, spec.Seed)

	// Bind kernels to storage.
	var instances [][]*instance
	var all []*instance
	nextPersist := isa.Reg(1)
	for si, sec := range spec.Sections {
		var row []*instance
		for ki := range sec.Kernels {
			in := &instance{k: sec.Kernels[ki]}
			if in.k.Kind == KPChase || in.k.Persist {
				if nextPersist > maxPersistent {
					return nil, fmt.Errorf("program %s: too many persistent kernels", spec.Name)
				}
				in.pReg = nextPersist
				nextPersist++
			}
			if in.k.Fn {
				in.fnLabel = fmt.Sprintf("fn_%d_%d", si, ki)
			}
			if err := in.setup(a); err != nil {
				return nil, fmt.Errorf("program %s section %d kernel %d (%v): %w",
					spec.Name, si, ki, in.k.Kind, err)
			}
			row = append(row, in)
			all = append(all, in)
		}
		instances = append(instances, row)
	}

	// Prologue: initialize persistent cursors.
	var initDyn uint64
	for _, in := range all {
		initDyn += in.initCode(a)
	}

	// Normalize section shares.
	var totalShare float64
	for _, s := range spec.Sections {
		if s.Share <= 0 {
			totalShare += 1
		} else {
			totalShare += s.Share
		}
	}

	// Emit each section; patch its outer trip count once the body's
	// dynamic cost is known.
	total := initDyn + 1 // +1 for the final halt
	for si := range spec.Sections {
		share := spec.Sections[si].Share
		if share <= 0 {
			share = 1
		}
		sectionTarget := uint64(float64(targetLen) * share / totalShare)

		liPos := a.emit(isa.Inst{Op: isa.OpAddI, Dst: regOuter, Src1: isa.RegZero}) // patched below
		loop := fmt.Sprintf("section_%d", si)
		a.label(loop)
		var bodyDyn uint64
		for _, in := range instances[si] {
			bodyDyn += in.emit(a)
		}
		a.opi(isa.OpAddI, regOuter, regOuter, -1)
		a.br(isa.OpBne, regOuter, isa.RegZero, loop)

		perIter := bodyDyn + 2 // body + decrement + back-branch
		outer := sectionTarget / perIter
		if outer == 0 {
			outer = 1
		}
		a.code[liPos].Imm = int64(outer)
		total += 1 + outer*perIter // li + iterations
	}
	a.halt()

	// Function bodies for Fn kernels, placed after the halt.
	for _, in := range all {
		if !in.k.Fn {
			continue
		}
		a.label(in.fnLabel)
		got := in.emitBody(a)
		a.ret()
		if got != in.bodyDyn() {
			return nil, fmt.Errorf("program %s: kernel %v dyn mismatch: emitted %d, computed %d",
				spec.Name, in.k.Kind, got, in.bodyDyn())
		}
	}

	a.dyn = total
	return a.finish(0)
}

// MustGenerate is Generate but panics on error; used by the suite whose
// specs are statically known to be valid (tests exercise this).
func MustGenerate(spec Spec, targetLen uint64) *Program {
	p, err := Generate(spec, targetLen)
	if err != nil {
		panic(err)
	}
	return p
}
