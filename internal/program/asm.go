package program

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// asm is a tiny single-pass assembler with label fixups and a bump
// allocator for the data image. Kernel emitters build on it.
type asm struct {
	name   string
	rng    *rand.Rand
	code   []isa.Inst
	segs   []Segment
	heap   uint64 // next free data address
	labels map[string]uint32
	fixups []fixup

	// dyn accumulates exact dynamic instruction counts as structured
	// emission proceeds; emitters add to it explicitly.
	dyn uint64
}

type fixup struct {
	pos   uint32
	label string
}

// dataBase is where the bump allocator starts. Code occupies a disjoint
// "address space" (instruction indices) so any nonzero base works; 16 MiB
// leaves room for red-zone gaps below.
const dataBase = 16 << 20

func newAsm(name string, seed int64) *asm {
	return &asm{
		name:   name,
		rng:    rand.New(rand.NewSource(seed)),
		heap:   dataBase,
		labels: make(map[string]uint32),
	}
}

// pc returns the index of the next instruction to be emitted.
func (a *asm) pc() uint32 { return uint32(len(a.code)) }

// emit appends one instruction and returns its index.
func (a *asm) emit(in isa.Inst) uint32 {
	a.code = append(a.code, in)
	return uint32(len(a.code) - 1)
}

// label binds name to the current position.
func (a *asm) label(name string) {
	if _, dup := a.labels[name]; dup {
		panic(fmt.Sprintf("asm %s: duplicate label %q", a.name, name))
	}
	a.labels[name] = a.pc()
}

// ref emits an instruction whose Target will be patched to label's
// position at finish time.
func (a *asm) ref(in isa.Inst, label string) uint32 {
	pos := a.emit(in)
	a.fixups = append(a.fixups, fixup{pos: pos, label: label})
	return pos
}

// finish resolves fixups and returns the assembled program.
func (a *asm) finish(entry uint64) (*Program, error) {
	for _, f := range a.fixups {
		tgt, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm %s: undefined label %q", a.name, f.label)
		}
		a.code[f.pos].Target = tgt
	}
	p := &Program{
		Name:   a.name,
		Code:   a.code,
		Segs:   a.segs,
		Entry:  entry,
		Length: a.dyn,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// alloc reserves size bytes in the data image, aligned to align (a power
// of two), and returns the base address. The region is zero-filled unless
// the caller attaches data via seg.
func (a *asm) alloc(size, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	a.heap = (a.heap + align - 1) &^ (align - 1)
	base := a.heap
	a.heap += size
	// Red-zone gap so adjacent regions never share a cache block.
	a.heap += 256
	return base
}

// seg attaches initialized data at addr.
func (a *asm) seg(addr uint64, data []byte) {
	a.segs = append(a.segs, Segment{Addr: addr, Data: data})
}

// ---- Instruction helpers. None of these touch a.dyn: dynamic counts are
// accounted by the structured emitters in kernels.go, which know their
// iteration counts.

func (a *asm) li(d isa.Reg, v int64) {
	a.emit(isa.Inst{Op: isa.OpAddI, Dst: d, Src1: isa.RegZero, Imm: v})
}

func (a *asm) op3(op isa.Op, d, s1, s2 isa.Reg) {
	a.emit(isa.Inst{Op: op, Dst: d, Src1: s1, Src2: s2})
}

func (a *asm) opi(op isa.Op, d, s1 isa.Reg, imm int64) {
	a.emit(isa.Inst{Op: op, Dst: d, Src1: s1, Imm: imm})
}

func (a *asm) ld(d, base isa.Reg, off int64) {
	a.emit(isa.Inst{Op: isa.OpLoad, Dst: d, Src1: base, Imm: off})
}

func (a *asm) st(v, base isa.Reg, off int64) {
	a.emit(isa.Inst{Op: isa.OpStore, Src1: base, Src2: v, Imm: off})
}

func (a *asm) fld(d, base isa.Reg, off int64) {
	a.emit(isa.Inst{Op: isa.OpFLoad, Dst: d, Src1: base, Imm: off})
}

func (a *asm) fst(v, base isa.Reg, off int64) {
	a.emit(isa.Inst{Op: isa.OpFStore, Src1: base, Src2: v, Imm: off})
}

func (a *asm) br(op isa.Op, s1, s2 isa.Reg, label string) {
	a.ref(isa.Inst{Op: op, Src1: s1, Src2: s2}, label)
}

func (a *asm) jmp(label string) {
	a.ref(isa.Inst{Op: isa.OpJmp}, label)
}

func (a *asm) call(label string) {
	a.ref(isa.Inst{Op: isa.OpCall}, label)
}

func (a *asm) ret() { a.emit(isa.Inst{Op: isa.OpRet}) }

func (a *asm) jr(s isa.Reg) { a.emit(isa.Inst{Op: isa.OpJr, Src1: s}) }

func (a *asm) nop() { a.emit(isa.Inst{Op: isa.OpNop}) }

func (a *asm) halt() { a.emit(isa.Inst{Op: isa.OpHalt}) }

// uniqueLabel returns a label name unique within this assembly.
func (a *asm) uniqueLabel(prefix string) string {
	return fmt.Sprintf("%s_%d", prefix, a.pc())
}
