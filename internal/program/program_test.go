package program_test

import (
	"bytes"
	"testing"

	"repro/internal/functional"
	"repro/internal/isa"
	"repro/internal/program"
)

// TestSuiteExactLength verifies the generator's core invariant: the
// Length computed by construction equals the actual dynamic instruction
// count measured by functional execution, for every suite workload.
func TestSuiteExactLength(t *testing.T) {
	for _, spec := range program.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p, err := program.Generate(spec, 300_000)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			cpu := functional.New(p)
			n, err := cpu.RunToCompletion()
			if err != nil {
				t.Fatalf("RunToCompletion: %v", err)
			}
			if n != p.Length {
				t.Errorf("dynamic length = %d, program.Length = %d (delta %d)",
					n, p.Length, int64(n)-int64(p.Length))
			}
			if p.Length < 150_000 || p.Length > 450_000 {
				t.Errorf("Length %d far from target 300000", p.Length)
			}
		})
	}
}

// TestGenerateDeterministic checks that generation is reproducible.
func TestGenerateDeterministic(t *testing.T) {
	spec, err := program.ByName("gccx")
	if err != nil {
		t.Fatal(err)
	}
	p1 := program.MustGenerate(spec, 100_000)
	p2 := program.MustGenerate(spec, 100_000)
	if len(p1.Code) != len(p2.Code) {
		t.Fatalf("code lengths differ: %d vs %d", len(p1.Code), len(p2.Code))
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Fatalf("code differs at %d: %v vs %v", i, p1.Code[i], p2.Code[i])
		}
	}
	if len(p1.Segs) != len(p2.Segs) {
		t.Fatalf("segment counts differ")
	}
	for i := range p1.Segs {
		if p1.Segs[i].Addr != p2.Segs[i].Addr || !bytes.Equal(p1.Segs[i].Data, p2.Segs[i].Data) {
			t.Fatalf("segment %d differs", i)
		}
	}
}

// TestSaveLoadRoundTrip checks program serialization.
func TestSaveLoadRoundTrip(t *testing.T) {
	spec, err := program.ByName("parserx")
	if err != nil {
		t.Fatal(err)
	}
	p := program.MustGenerate(spec, 50_000)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q, err := program.Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if q.Name != p.Name || q.Entry != p.Entry || q.Length != p.Length {
		t.Errorf("metadata mismatch: %+v vs %+v", q, p)
	}
	if len(q.Code) != len(p.Code) {
		t.Fatalf("code length mismatch")
	}
	for i := range p.Code {
		if p.Code[i] != q.Code[i] {
			t.Fatalf("code differs at %d", i)
		}
	}
}

// TestValidateCatchesBadTarget ensures Validate rejects out-of-range
// control targets.
func TestValidateCatchesBadTarget(t *testing.T) {
	p := &program.Program{
		Name: "bad",
		Code: []isa.Inst{{Op: isa.OpJmp, Target: 99}},
	}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted out-of-range jump target")
	}
}

// TestScaling verifies Generate tracks widely varying target lengths.
func TestScaling(t *testing.T) {
	spec, err := program.ByName("eonx")
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []uint64{60_000, 1_000_000, 5_000_000} {
		p := program.MustGenerate(spec, target)
		ratio := float64(p.Length) / float64(target)
		if ratio < 0.5 || ratio > 1.5 {
			t.Errorf("target %d: got length %d (ratio %.2f)", target, p.Length, ratio)
		}
	}
}
