// Package program defines executable workloads for the simulators: the
// Program container, a small assembler used to build programs, a library
// of parameterized kernels (streaming, pointer-chasing, branchy integer
// code, FP stencils, indirect dispatch, …), and a 16-entry synthetic
// benchmark suite whose members are archetypes of SPEC CPU2000 behaviour.
//
// Programs carry their exact dynamic instruction count, computed by
// construction while the generator emits code. The functional simulator
// verifies this invariant in tests; the SMARTS controller relies on it to
// derive the sampling population size N without a profiling pre-pass.
package program

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Segment is a chunk of the initial memory image.
type Segment struct {
	Addr uint64
	Data []byte
}

// Program is a complete executable workload: code, initial memory image,
// and metadata.
type Program struct {
	// Name identifies the workload (e.g. "mcfx").
	Name string
	// Code is the instruction memory, indexed by PC.
	Code []isa.Inst
	// Segs is the initial data image.
	Segs []Segment
	// Entry is the initial PC.
	Entry uint64
	// Length is the exact dynamic instruction count from Entry to Halt,
	// computed by construction during generation.
	Length uint64
}

// NewMemory materializes the initial memory image.
func (p *Program) NewMemory() *mem.Memory {
	m := mem.New()
	for _, s := range p.Segs {
		m.WriteBytes(s.Addr, s.Data)
	}
	return m
}

// DataBytes returns the total size of the initial image.
func (p *Program) DataBytes() uint64 {
	var n uint64
	for _, s := range p.Segs {
		n += uint64(len(s.Data))
	}
	return n
}

// Validate checks structural invariants: entry and all direct control
// targets are within the code, register fields are in range.
func (p *Program) Validate() error {
	n := uint32(len(p.Code))
	if p.Entry >= uint64(n) {
		return fmt.Errorf("program %s: entry %d outside code (%d insts)", p.Name, p.Entry, n)
	}
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("program %s: invalid opcode at %d", p.Name, pc)
		}
		if in.Dst >= isa.NumRegs || in.Src1 >= isa.NumRegs || in.Src2 >= isa.NumRegs {
			return fmt.Errorf("program %s: register out of range at %d: %v", p.Name, pc, in)
		}
		switch in.Op.Class() {
		case isa.ClassBranch, isa.ClassJump:
			if in.Target >= n {
				return fmt.Errorf("program %s: target %d outside code at %d", p.Name, in.Target, pc)
			}
		}
	}
	return nil
}

// Serialization format version and magic for Save/Load.
const (
	magic   = 0x534d5254 // "SMRT"
	version = 1
)

// Save writes the program in a self-describing binary format.
func (p *Program) Save(w io.Writer) error {
	var hdr [4]uint64
	hdr[0] = magic
	hdr[1] = version
	hdr[2] = p.Entry
	hdr[3] = p.Length
	if err := binary.Write(w, binary.LittleEndian, hdr[:]); err != nil {
		return fmt.Errorf("program: save header: %w", err)
	}
	if err := writeString(w, p.Name); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(p.Code))); err != nil {
		return err
	}
	buf := make([]byte, isa.EncodedSize)
	for _, in := range p.Code {
		in.Encode(buf)
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("program: save code: %w", err)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(p.Segs))); err != nil {
		return err
	}
	for _, s := range p.Segs {
		if err := binary.Write(w, binary.LittleEndian, s.Addr); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(len(s.Data))); err != nil {
			return err
		}
		if _, err := w.Write(s.Data); err != nil {
			return fmt.Errorf("program: save segment: %w", err)
		}
	}
	return nil
}

// Load reads a program written by Save.
func Load(r io.Reader) (*Program, error) {
	var hdr [4]uint64
	if err := binary.Read(r, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("program: load header: %w", err)
	}
	if hdr[0] != magic {
		return nil, fmt.Errorf("program: bad magic %#x", hdr[0])
	}
	if hdr[1] != version {
		return nil, fmt.Errorf("program: unsupported version %d", hdr[1])
	}
	p := &Program{Entry: hdr[2], Length: hdr[3]}
	var err error
	if p.Name, err = readString(r); err != nil {
		return nil, err
	}
	var nCode uint64
	if err := binary.Read(r, binary.LittleEndian, &nCode); err != nil {
		return nil, err
	}
	const maxCode = 1 << 26
	if nCode > maxCode {
		return nil, fmt.Errorf("program: unreasonable code size %d", nCode)
	}
	p.Code = make([]isa.Inst, nCode)
	buf := make([]byte, isa.EncodedSize)
	for i := range p.Code {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("program: load code: %w", err)
		}
		if p.Code[i], err = isa.Decode(buf); err != nil {
			return nil, err
		}
	}
	var nSegs uint64
	if err := binary.Read(r, binary.LittleEndian, &nSegs); err != nil {
		return nil, err
	}
	const maxSegs = 1 << 20
	if nSegs > maxSegs {
		return nil, fmt.Errorf("program: unreasonable segment count %d", nSegs)
	}
	p.Segs = make([]Segment, nSegs)
	for i := range p.Segs {
		var addr, size uint64
		if err := binary.Read(r, binary.LittleEndian, &addr); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
			return nil, err
		}
		const maxSeg = 1 << 32
		if size > maxSeg {
			return nil, fmt.Errorf("program: unreasonable segment size %d", size)
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("program: load segment: %w", err)
		}
		p.Segs[i] = Segment{Addr: addr, Data: data}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("program: unreasonable string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
