package program

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/isa"
)

// KernelKind enumerates the behavioural archetypes a workload is composed
// of. Each kind stresses a different part of the microarchitecture, so
// composing them produces the multi-scale CPI variance SMARTS samples.
type KernelKind int

// Kernel kinds.
const (
	// KStream scans a working set sequentially (loads, optional stores).
	// Stresses cache bandwidth; CPI is stable within the kernel.
	KStream KernelKind = iota
	// KPChase walks a randomized linked cycle. Serialized cache misses;
	// CPI tracks the miss latency of the level the working set spills to.
	KPChase
	// KCompInt runs independent integer dependence chains (ALU + MUL).
	KCompInt
	// KCompFP runs independent floating-point chains (FADD/FMUL, optional
	// FDIV).
	KCompFP
	// KBranchy executes two data-dependent branches per iteration with
	// configurable bias / pattern / noise; stresses the branch predictor.
	KBranchy
	// KStencil is a 3-point FP stencil: 3 loads, 3 FP ops, 1 store per
	// element over a working set, writing a second array.
	KStencil
	// KReduce is a serialized FP reduction over a working set (load +
	// dependent FADD).
	KReduce
	// KSwitchy dispatches through a load-then-indirect-jump to one of
	// Handlers equal-length handlers; stresses the BTB.
	KSwitchy
)

// String implements fmt.Stringer.
func (k KernelKind) String() string {
	switch k {
	case KStream:
		return "stream"
	case KPChase:
		return "pchase"
	case KCompInt:
		return "compint"
	case KCompFP:
		return "compfp"
	case KBranchy:
		return "branchy"
	case KStencil:
		return "stencil"
	case KReduce:
		return "reduce"
	case KSwitchy:
		return "switchy"
	}
	return "unknown"
}

// Kernel parameterizes one kernel instance inside a workload section.
type Kernel struct {
	Kind KernelKind

	// WS is the working-set size in bytes (must be a power of two for
	// kinds that touch memory).
	WS uint64
	// Stride is the access stride in bytes for KStream (default 8).
	Stride uint64
	// Iters is the inner iteration count per invocation.
	Iters uint64
	// Chains is the number of independent dependence chains for
	// KCompInt/KCompFP (1..5 int, 1..6 fp).
	Chains int
	// Bias is the probability a KBranchy condition bit is set.
	Bias float64
	// Pattern, when nonzero, makes KBranchy condition bits follow a
	// repeating pattern of this period instead of i.i.d. draws.
	Pattern int
	// Noise is the probability a pattern bit is flipped.
	Noise float64
	// Store makes KStream write back each element.
	Store bool
	// FP selects floating-point data for KStream.
	FP bool
	// Div adds one FDIV per iteration to KCompFP.
	Div bool
	// Work adds this many dependent ALU ops per KPChase hop.
	Work int
	// Handlers is the dispatch-table size for KSwitchy (power of two).
	Handlers int
	// Fn wraps the kernel in a function invoked by Call/Ret.
	Fn bool
	// Persist keeps the kernel's cursor (scan offset or chase pointer)
	// live across invocations in a dedicated register instead of
	// restarting from zero.
	Persist bool
}

// Scratch register conventions shared by all kernel emitters. Persistent
// cursors live in r1..r15, assigned by the generator; the outer loop
// counters use r19/r20.
const (
	rA = isa.Reg(21) // address
	rV = isa.Reg(22) // loaded value
	rT = isa.Reg(23) // temp
	rC = isa.Reg(24) // inner loop counter
	rM = isa.Reg(25) // offset mask
	rB = isa.Reg(26) // region base
	rX = isa.Reg(27) // accumulator
	rY = isa.Reg(28) // non-persistent cursor
	rZ = isa.Reg(29) // second base / accumulator
)

// instance is a kernel bound to its allocated storage.
type instance struct {
	k       Kernel
	base    uint64 // primary data region
	base2   uint64 // secondary region (stencil output, dispatch table)
	pReg    isa.Reg
	fnLabel string // set when k.Fn
}

// setup allocates memory and builds the initial data image for the
// instance. Must run before any code is emitted that references it.
func (in *instance) setup(a *asm) error {
	k := in.k
	switch k.Kind {
	case KStream, KReduce:
		if err := checkWS(k.WS); err != nil {
			return err
		}
		in.base = a.alloc(k.WS, 64)
		a.seg(in.base, randomWords(a, k.WS, k.FP || k.Kind == KReduce))
	case KBranchy:
		if err := checkWS(k.WS); err != nil {
			return err
		}
		in.base = a.alloc(k.WS, 64)
		a.seg(in.base, branchWords(a, k))
	case KPChase:
		if err := checkWS(k.WS); err != nil {
			return err
		}
		if k.WS < 128 {
			return fmt.Errorf("pchase working set %d too small", k.WS)
		}
		in.base = a.alloc(k.WS, 64)
		a.seg(in.base, chaseCycle(a, in.base, k.WS))
	case KStencil:
		if err := checkWS(k.WS); err != nil {
			return err
		}
		in.base = a.alloc(k.WS+64, 64)
		in.base2 = a.alloc(k.WS+64, 64)
		a.seg(in.base, randomWords(a, k.WS+64, true))
	case KSwitchy:
		if err := checkWS(k.WS); err != nil {
			return err
		}
		if k.Handlers == 0 || k.Handlers&(k.Handlers-1) != 0 {
			return fmt.Errorf("switchy handlers %d must be a power of two", k.Handlers)
		}
		in.base = a.alloc(k.WS, 64)
		a.seg(in.base, randomWords(a, k.WS, false))
		in.base2 = a.alloc(uint64(k.Handlers)*8, 64)
		// Table contents are filled in by the emitter once handler PCs
		// are known.
	case KCompInt, KCompFP:
		// No memory.
	default:
		return fmt.Errorf("unknown kernel kind %d", k.Kind)
	}
	return nil
}

func checkWS(ws uint64) error {
	if ws == 0 || ws&(ws-1) != 0 {
		return fmt.Errorf("working set %d must be a nonzero power of two", ws)
	}
	return nil
}

// initDyn emits persistent-register initialization into the program
// prologue and returns the instruction count emitted.
func (in *instance) initCode(a *asm) uint64 {
	if in.pReg == isa.RegZero {
		return 0
	}
	if in.k.Kind == KPChase {
		a.li(in.pReg, int64(in.base))
	} else {
		a.li(in.pReg, 0)
	}
	return 1
}

// emit generates one invocation of the kernel at the current position and
// returns its exact dynamic instruction count.
func (in *instance) emit(a *asm) uint64 {
	if in.k.Fn {
		// The body lives in a function; the call site costs call+ret.
		a.call(in.fnLabel)
		return in.bodyDyn() + 2
	}
	return in.emitBody(a)
}

// bodyDyn computes the dynamic cost of one body invocation analytically.
// emitBody returns the same value; tests cross-check the two.
func (in *instance) bodyDyn() uint64 {
	k := in.k
	it := k.Iters
	switch k.Kind {
	case KStream:
		body := uint64(7)
		if k.Store {
			body++
		}
		return in.prologue() + it*body
	case KPChase:
		return in.prologue() + it*uint64(3+k.Work)
	case KCompInt:
		c := uint64(k.Chains)
		return 1 + c + it*(c+2)
	case KCompFP:
		c := uint64(k.Chains)
		d := uint64(0)
		if k.Div {
			d = 1
		}
		return 1 + c + it*(c+d+2)
	case KBranchy:
		return in.prologue() + it*15
	case KStencil:
		return in.prologue() + 1 + it*13
	case KReduce:
		return in.prologue() + 1 + it*7
	case KSwitchy:
		return in.prologue() + it*13
	}
	return 0
}

// prologue returns the per-invocation setup cost excluding kind-specific
// extras (accounted in bodyDyn).
func (in *instance) prologue() uint64 {
	k := in.k
	var n uint64
	switch k.Kind {
	case KStream, KBranchy, KReduce:
		n = 3 // li base, li mask, li count
	case KStencil:
		n = 4 // li baseA, li baseB, li mask, li count
	case KSwitchy:
		n = 4 // li base, li mask, li count, li table
	case KPChase:
		n = 1 // li count
	}
	if !k.Persist && k.Kind != KPChase && k.Kind != KCompInt && k.Kind != KCompFP {
		n++ // li cursor, 0
	}
	return n
}

// cursor returns the register holding the scan offset for this instance.
func (in *instance) cursor() isa.Reg {
	if in.k.Persist && in.pReg != isa.RegZero {
		return in.pReg
	}
	return rY
}

// emitBody emits the kernel body and returns its dynamic cost. The
// returned value must equal bodyDyn().
func (in *instance) emitBody(a *asm) uint64 {
	k := in.k
	switch k.Kind {
	case KStream:
		return in.emitStream(a)
	case KPChase:
		return in.emitPChase(a)
	case KCompInt:
		return in.emitCompInt(a)
	case KCompFP:
		return in.emitCompFP(a)
	case KBranchy:
		return in.emitBranchy(a)
	case KStencil:
		return in.emitStencil(a)
	case KReduce:
		return in.emitReduce(a)
	case KSwitchy:
		return in.emitSwitchy(a)
	}
	panic("unreachable kernel kind")
}

func (in *instance) emitStream(a *asm) uint64 {
	k := in.k
	off := in.cursor()
	stride := int64(k.Stride)
	if stride == 0 {
		stride = 8
	}
	a.li(rB, int64(in.base))
	a.li(rM, int64(k.WS-8))
	a.li(rC, int64(k.Iters))
	if off == rY {
		a.li(rY, 0)
	}
	loop := a.uniqueLabel("stream")
	a.label(loop)
	a.op3(isa.OpAdd, rA, rB, off)
	if k.FP {
		a.fld(isa.FP(0), rA, 0)
		a.op3(isa.OpFAdd, isa.FP(1), isa.FP(1), isa.FP(0))
		if k.Store {
			a.fst(isa.FP(1), rA, 0)
		}
	} else {
		a.ld(rV, rA, 0)
		a.op3(isa.OpAdd, rX, rX, rV)
		if k.Store {
			a.st(rX, rA, 0)
		}
	}
	a.opi(isa.OpAddI, off, off, stride)
	a.op3(isa.OpAnd, off, off, rM)
	a.opi(isa.OpAddI, rC, rC, -1)
	a.br(isa.OpBne, rC, isa.RegZero, loop)
	return in.bodyDyn()
}

func (in *instance) emitPChase(a *asm) uint64 {
	k := in.k
	p := in.pReg
	a.li(rC, int64(k.Iters))
	loop := a.uniqueLabel("pchase")
	a.label(loop)
	a.ld(p, p, 0)
	for w := 0; w < k.Work; w++ {
		a.op3(isa.OpAdd, rX, rX, p)
	}
	a.opi(isa.OpAddI, rC, rC, -1)
	a.br(isa.OpBne, rC, isa.RegZero, loop)
	return in.bodyDyn()
}

func (in *instance) emitCompInt(a *asm) uint64 {
	k := in.k
	c := k.Chains
	a.li(rC, int64(k.Iters))
	for j := 0; j < c; j++ {
		a.li(isa.Reg(25+j), int64(j)*1103515245+12345)
	}
	loop := a.uniqueLabel("compint")
	a.label(loop)
	for j := 0; j < c; j++ {
		r := isa.Reg(25 + j)
		switch j % 3 {
		case 0:
			a.op3(isa.OpAdd, r, r, r)
		case 1:
			a.op3(isa.OpXor, r, r, rC)
		case 2:
			a.op3(isa.OpMul, r, r, r)
		}
	}
	a.opi(isa.OpAddI, rC, rC, -1)
	a.br(isa.OpBne, rC, isa.RegZero, loop)
	return in.bodyDyn()
}

func (in *instance) emitCompFP(a *asm) uint64 {
	k := in.k
	c := k.Chains
	a.li(rC, int64(k.Iters))
	for j := 0; j < c; j++ {
		a.op3(isa.OpCvtIF, isa.FP(1+j), rC, isa.RegZero)
	}
	loop := a.uniqueLabel("compfp")
	a.label(loop)
	for j := 0; j < c; j++ {
		f := isa.FP(1 + j)
		if j%2 == 0 {
			a.op3(isa.OpFAdd, f, f, f)
		} else {
			a.op3(isa.OpFMul, f, f, f)
		}
	}
	if k.Div {
		a.op3(isa.OpFDiv, isa.FP(1), isa.FP(1), isa.FP(2))
	}
	a.opi(isa.OpAddI, rC, rC, -1)
	a.br(isa.OpBne, rC, isa.RegZero, loop)
	return in.bodyDyn()
}

func (in *instance) emitBranchy(a *asm) uint64 {
	k := in.k
	off := in.cursor()
	a.li(rB, int64(in.base))
	a.li(rM, int64(k.WS-8))
	a.li(rC, int64(k.Iters))
	if off == rY {
		a.li(rY, 0)
	}
	loop := a.uniqueLabel("branchy")
	else1 := loop + "_e1"
	join1 := loop + "_j1"
	else2 := loop + "_e2"
	join2 := loop + "_j2"
	a.label(loop)
	a.op3(isa.OpAdd, rA, rB, off)
	a.ld(rV, rA, 0)
	// Branch 1: on bit 0.
	a.opi(isa.OpAndI, rT, rV, 1)
	a.br(isa.OpBeq, rT, isa.RegZero, else1)
	a.op3(isa.OpAdd, rX, rX, rV)
	a.jmp(join1)
	a.label(else1)
	a.op3(isa.OpSub, rX, rX, rV)
	a.opi(isa.OpAddI, rX, rX, 1) // pad: both arms cost 2 dynamic insts
	a.label(join1)
	a.opi(isa.OpShrI, rV, rV, 1)
	// Branch 2: on bit 1.
	a.opi(isa.OpAndI, rT, rV, 1)
	a.br(isa.OpBeq, rT, isa.RegZero, else2)
	a.op3(isa.OpXor, rZ, rZ, rV)
	a.jmp(join2)
	a.label(else2)
	a.op3(isa.OpOr, rZ, rZ, rV)
	a.opi(isa.OpAddI, rZ, rZ, 0)
	a.label(join2)
	a.opi(isa.OpAddI, off, off, 8)
	a.op3(isa.OpAnd, off, off, rM)
	a.opi(isa.OpAddI, rC, rC, -1)
	a.br(isa.OpBne, rC, isa.RegZero, loop)
	return in.bodyDyn()
}

func (in *instance) emitStencil(a *asm) uint64 {
	k := in.k
	off := in.cursor()
	a.li(rB, int64(in.base))
	a.li(rZ, int64(in.base2))
	a.li(rM, int64(k.WS-8))
	a.li(rC, int64(k.Iters))
	if off == rY {
		a.li(rY, 0)
	}
	a.op3(isa.OpCvtIF, isa.FP(4), rC, isa.RegZero)
	loop := a.uniqueLabel("stencil")
	a.label(loop)
	a.op3(isa.OpAdd, rA, rB, off)
	a.fld(isa.FP(0), rA, 0)
	a.fld(isa.FP(1), rA, 8)
	a.fld(isa.FP(2), rA, 16)
	a.op3(isa.OpFAdd, isa.FP(3), isa.FP(0), isa.FP(2))
	a.op3(isa.OpFMul, isa.FP(3), isa.FP(3), isa.FP(1))
	a.op3(isa.OpFAdd, isa.FP(5), isa.FP(3), isa.FP(4))
	a.op3(isa.OpAdd, rA, rZ, off)
	a.fst(isa.FP(5), rA, 0)
	a.opi(isa.OpAddI, off, off, 8)
	a.op3(isa.OpAnd, off, off, rM)
	a.opi(isa.OpAddI, rC, rC, -1)
	a.br(isa.OpBne, rC, isa.RegZero, loop)
	return in.bodyDyn()
}

func (in *instance) emitReduce(a *asm) uint64 {
	k := in.k
	off := in.cursor()
	a.li(rB, int64(in.base))
	a.li(rM, int64(k.WS-8))
	a.li(rC, int64(k.Iters))
	if off == rY {
		a.li(rY, 0)
	}
	a.op3(isa.OpCvtIF, isa.FP(0), isa.RegZero, isa.RegZero)
	loop := a.uniqueLabel("reduce")
	a.label(loop)
	a.op3(isa.OpAdd, rA, rB, off)
	a.fld(isa.FP(1), rA, 0)
	a.op3(isa.OpFAdd, isa.FP(0), isa.FP(0), isa.FP(1))
	a.opi(isa.OpAddI, off, off, 8)
	a.op3(isa.OpAnd, off, off, rM)
	a.opi(isa.OpAddI, rC, rC, -1)
	a.br(isa.OpBne, rC, isa.RegZero, loop)
	return in.bodyDyn()
}

func (in *instance) emitSwitchy(a *asm) uint64 {
	k := in.k
	off := in.cursor()
	a.li(rB, int64(in.base))
	a.li(rM, int64(k.WS-8))
	a.li(rC, int64(k.Iters))
	a.li(rZ, int64(in.base2))
	if off == rY {
		a.li(rY, 0)
	}
	loop := a.uniqueLabel("switchy")
	hjoin := loop + "_join"
	a.label(loop)
	a.op3(isa.OpAdd, rA, rB, off)
	a.ld(rV, rA, 0)
	a.opi(isa.OpAndI, rT, rV, int64(k.Handlers-1))
	a.opi(isa.OpShlI, rT, rT, 3)
	a.op3(isa.OpAdd, rT, rZ, rT)
	a.ld(rT, rT, 0)
	a.jr(rT)
	// Handlers: each exactly 2 dynamic instructions.
	handlers := make([]uint64, k.Handlers)
	for h := 0; h < k.Handlers; h++ {
		handlers[h] = uint64(a.pc())
		a.opi(isa.OpAddI, rX, rX, int64(h+1))
		a.jmp(hjoin)
	}
	a.label(hjoin)
	a.opi(isa.OpAddI, off, off, 8)
	a.op3(isa.OpAnd, off, off, rM)
	a.opi(isa.OpAddI, rC, rC, -1)
	a.br(isa.OpBne, rC, isa.RegZero, loop)
	// Now that handler PCs are known, attach the dispatch table.
	tbl := make([]byte, k.Handlers*8)
	for h, pc := range handlers {
		binary.LittleEndian.PutUint64(tbl[h*8:], pc)
	}
	a.seg(in.base2, tbl)
	return in.bodyDyn()
}

// ---- Data builders.

// randomWords fills size bytes with random 64-bit data; fp selects finite
// float64 payloads in (0,1) so FP arithmetic stays finite.
func randomWords(a *asm, size uint64, fp bool) []byte {
	data := make([]byte, size)
	for i := uint64(0); i+8 <= size; i += 8 {
		var v uint64
		if fp {
			v = math.Float64bits(a.rng.Float64()*0.5 + 0.25)
		} else {
			v = a.rng.Uint64()
		}
		binary.LittleEndian.PutUint64(data[i:], v)
	}
	return data
}

// branchWords builds KBranchy condition data: bits 0 and 1 of each word
// drive the two branches. With Pattern>0 bits follow a repeating pattern
// of that period with Noise flips; otherwise bits are i.i.d. with
// probability Bias.
func branchWords(a *asm, k Kernel) []byte {
	data := make([]byte, k.WS)
	var pattern []bool
	if k.Pattern > 0 {
		pattern = make([]bool, k.Pattern)
		for i := range pattern {
			pattern[i] = a.rng.Float64() < 0.5
		}
	}
	bit := func(idx uint64) uint64 {
		var b bool
		if pattern != nil {
			b = pattern[idx%uint64(len(pattern))]
			if a.rng.Float64() < k.Noise {
				b = !b
			}
		} else {
			b = a.rng.Float64() < k.Bias
		}
		if b {
			return 1
		}
		return 0
	}
	for i := uint64(0); i+8 <= k.WS; i += 8 {
		w := a.rng.Uint64() &^ 3
		w |= bit(i/8*2) | bit(i/8*2+1)<<1
		binary.LittleEndian.PutUint64(data[i:], w)
	}
	return data
}

// chaseCycle lays a Sattolo cycle of absolute pointers over the region:
// one node per 64-byte block, each holding the address of the next node,
// forming a single cycle that visits every node.
func chaseCycle(a *asm, base, ws uint64) []byte {
	n := ws / 64
	perm := make([]uint64, n)
	for i := range perm {
		perm[i] = uint64(i)
	}
	// Sattolo's algorithm: a uniform random cyclic permutation.
	for i := len(perm) - 1; i > 0; i-- {
		j := a.rng.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	data := make([]byte, ws)
	for i := uint64(0); i < n; i++ {
		next := perm[i]
		binary.LittleEndian.PutUint64(data[i*64:], base+next*64)
	}
	return data
}
