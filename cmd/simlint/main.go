// Command simlint runs the project-invariant static analyzer suite
// over the module: determinism discipline in bit-identity-critical
// packages, allocation-freedom of //simlint:hotpath functions,
// context plumbing through the blocking layers, store-key
// exhaustiveness for the checkpoint cache, and error-wrap hygiene.
//
// Usage:
//
//	go run ./cmd/simlint ./...
//
// simlint loads and type-checks the whole module (stdlib-only, via
// the go/types source importer), prints file:line:col diagnostics,
// and exits nonzero when any invariant is violated. See the root
// package documentation for the invariant catalogue and the
// //simlint annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("dir", ".", "directory inside the module to lint")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-dir .] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	// Patterns are accepted for familiarity (`simlint ./...`), but the
	// suite always analyzes the whole module: the invariants it checks
	// are module-global (cross-package hot-path call graphs, store-key
	// hash functions in other packages).
	diags, err := lint.Run(lint.Config{Dir: *dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
