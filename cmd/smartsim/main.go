// Command smartsim is the SMARTSim equivalent: a sampling
// microarchitecture simulator. It runs one workload of the synthetic
// suite under a chosen machine configuration and sampling plan and
// prints the CPI and EPI estimates with their confidence, or — with
// -procedure — executes the paper's full two-step estimation procedure.
//
// Usage:
//
//	smartsim -bench gccx -config 8-way -n 400
//	smartsim -bench mcfx -u 1000 -w 2000 -warming functional -n 1000
//	smartsim -bench ammpx -procedure -eps 0.03
//	smartsim -bench gccx -n 2000 -parallel -1                      # engine across all cores
//	smartsim -bench gccx -n 2000 -parallel -1 -ckpt-dir ~/.smarts  # sweep saved; reruns skip it
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
)

func main() {
	var (
		bench     = flag.String("bench", "gccx", "workload name (see -list)")
		list      = flag.Bool("list", false, "list available workloads and exit")
		cfgName   = flag.String("config", "8-way", "machine configuration: 8-way or 16-way")
		length    = flag.Uint64("length", 2_000_000, "target dynamic instruction count")
		u         = flag.Uint64("u", 1000, "sampling unit size U")
		w         = flag.Uint64("w", 0, "detailed warming W (0 = recommended for config)")
		n         = flag.Uint64("n", 400, "number of sampling units n")
		j         = flag.Uint64("j", 0, "systematic phase offset j (units)")
		warming   = flag.String("warming", "functional", "warming mode: none, detailed, functional")
		procedure = flag.Bool("procedure", false, "run the full two-step procedure")
		eps       = flag.Float64("eps", 0.03, "target relative confidence interval")
		parallel  = flag.Int("parallel", 0, "checkpointed parallel engine workers (0 = classic serial path, -1 = all cores)")
		ckptDir   = flag.String("ckpt-dir", "", "on-disk checkpoint store directory; sweeps are saved and reused across runs (empty = in-memory only; requires -parallel)")
		ckptMax   = flag.Int64("ckpt-max-bytes", 0, "LRU size cap for the checkpoint store in bytes; each save evicts the least recently used entries over the cap (0 = unbounded)")
	)
	flag.Parse()

	if *list {
		for _, spec := range program.Suite() {
			fmt.Printf("%-10s (archetype of %s)\n", spec.Name, spec.Model)
		}
		return
	}

	cfg, err := uarch.ConfigByName(*cfgName)
	if err != nil {
		fatal(err)
	}
	mode, err := parseWarming(*warming)
	if err != nil {
		fatal(err)
	}
	spec, err := program.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	p, err := program.Generate(spec, *length)
	if err != nil {
		fatal(err)
	}
	if *u == 0 {
		fatal(fmt.Errorf("unit size -u must be positive"))
	}
	if *w == 0 {
		*w = smarts.RecommendedW(cfg)
	}
	fmt.Printf("workload %s: %d instructions, %d sampling units of %d\n",
		p.Name, p.Length, p.Length / *u, *u)

	var store *checkpoint.Store
	if *ckptDir != "" {
		if *parallel == 0 {
			fmt.Fprintln(os.Stderr, "smartsim: -ckpt-dir requires the checkpointed engine; ignoring it on the classic serial path (set -parallel)")
		} else {
			if store, err = checkpoint.OpenStore(*ckptDir); err != nil {
				fatal(err)
			}
			store.MaxBytes = *ckptMax
			store.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
			defer reportStore(store)
		}
	}

	if *procedure {
		pc := smarts.DefaultProcedure(cfg, *n)
		pc.U, pc.W, pc.Warming, pc.Eps, pc.J = *u, *w, mode, *eps, *j
		pc.Parallelism = *parallel
		pc.Store = store
		pr, err := smarts.RunProcedure(p, cfg, pc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("initial run  (n=%d): CPI %v\n", pr.Initial.CPISample().N(), pr.InitialCPI)
		if pr.Tuned != nil {
			fmt.Printf("tuned run  (n=%d): CPI %v\n", pr.Tuned.CPISample().N(), pr.TunedCPI)
		} else {
			fmt.Println("initial run met the confidence target; no second run needed")
		}
		report(pr.FinalResult())
		return
	}

	plan := smarts.PlanForN(p.Length, *u, *w, *n, mode, *j)
	plan.Parallelism = *parallel
	plan.Store = store
	res, err := smarts.Run(p, cfg, plan)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan: U=%d W=%d k=%d j=%d warming=%v parallel=%d\n",
		plan.U, plan.W, plan.K, plan.J, plan.Warming, plan.Parallelism)
	report(res)
}

func report(res *smarts.Result) {
	cpi := res.CPIEstimate(stats.Alpha997)
	epi := res.EPIEstimate(stats.Alpha997)
	fmt.Printf("CPI estimate: %v\n", cpi)
	fmt.Printf("EPI estimate: %v nJ\n", epi)
	fmt.Printf("instructions: %d measured, %d detailed warming, %d fast-forwarded\n",
		res.MeasuredInsts, res.WarmingInsts, res.FastFwdInsts)
	if res.SweepCached {
		fmt.Printf("time: %v detailed (functional sweep skipped: launch states loaded from the checkpoint store)\n",
			res.DetailedTime.Round(1e6))
		return
	}
	fmt.Printf("time: %v fast-forward, %v detailed\n",
		res.FastFwdTime.Round(1e6), res.DetailedTime.Round(1e6))
}

func reportStore(store *checkpoint.Store) {
	hits, misses := store.Stats()
	fmt.Fprintf(os.Stderr, "checkpoint store %s: %d hits, %d misses\n", store.Dir(), hits, misses)
}

func parseWarming(s string) (smarts.WarmingMode, error) {
	switch s {
	case "none":
		return smarts.NoWarming, nil
	case "detailed":
		return smarts.DetailedWarming, nil
	case "functional":
		return smarts.FunctionalWarming, nil
	}
	return 0, fmt.Errorf("unknown warming mode %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartsim:", err)
	os.Exit(1)
}
