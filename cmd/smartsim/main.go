// Command smartsim is the SMARTSim equivalent: a sampling
// microarchitecture simulator. It runs one workload of the synthetic
// suite under a chosen machine configuration and sampling plan and
// prints the CPI and EPI estimates with their confidence, or — with
// -procedure — executes the paper's full two-step estimation procedure.
// It is a thin shell over the sim service API (sim.Open / Session.Run).
//
// Usage:
//
//	smartsim -bench gccx -config 8-way -n 400
//	smartsim -bench mcfx -u 1000 -w 2000 -warming functional -n 1000
//	smartsim -bench ammpx -procedure -eps 0.03
//	smartsim -bench gccx -n 2000 -parallel -1                      # engine across all cores
//	smartsim -bench gccx -n 2000 -parallel -1 -ckpt-dir ~/.smarts  # sweep saved; reruns skip it
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/sim"
	"repro/sim/simflag"
)

func main() {
	var (
		workload  = simflag.RegisterWorkload(flag.CommandLine)
		machine   = simflag.RegisterMachine(flag.CommandLine)
		plan      = simflag.RegisterPlan(flag.CommandLine)
		engine    = simflag.RegisterEngine(flag.CommandLine)
		procedure = flag.Bool("procedure", false, "run the full two-step procedure")
		eps       = flag.Float64("eps", 0.03, "target relative confidence interval")
	)
	flag.Parse()

	if workload.ListAndExit() {
		return
	}
	cfg, err := machine.Config()
	if err != nil {
		fatal(err)
	}

	sess, err := sim.Open(engine.SessionOptions("smartsim")...)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	defer simflag.ReportStore(sess)

	req := sim.NewRequest(*workload.Bench, sim.Machine(cfg), sim.Length(*workload.Length))
	if err := plan.Apply(req); err != nil {
		fatal(err)
	}
	engine.Apply(req)
	if *procedure {
		req.Procedure = &sim.ProcedureSpec{Eps: *eps}
	}

	prog, err := sess.Workload(req.Workload, req.Length)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload %s: %d instructions, %d sampling units of %d\n",
		prog.Name, prog.Length, prog.Length/req.U, req.U)

	rep, err := sess.Run(context.Background(), req)
	if err != nil {
		fatal(err)
	}

	if pr := rep.Procedure; pr != nil {
		fmt.Printf("initial run  (n=%d): CPI %v\n", pr.Initial.CPISample().N(), pr.InitialCPI)
		if pr.Tuned != nil {
			fmt.Printf("tuned run  (n=%d): CPI %v\n", pr.Tuned.CPISample().N(), pr.TunedCPI)
		} else {
			fmt.Println("initial run met the confidence target; no second run needed")
		}
		report(rep)
		return
	}
	res := rep.Result()
	fmt.Printf("plan: U=%d W=%d k=%d j=%d warming=%v parallel=%d\n",
		res.Plan.U, res.Plan.W, res.Plan.K, res.Plan.J, res.Plan.Warming, *engine.Parallel)
	report(rep)
}

func report(rep *sim.Report) {
	res := rep.Result()
	cpi := res.CPIEstimate(sim.Alpha997)
	epi := res.EPIEstimate(sim.Alpha997)
	fmt.Printf("CPI estimate: %v\n", cpi)
	fmt.Printf("EPI estimate: %v nJ\n", epi)
	fmt.Printf("instructions: %d measured, %d detailed warming, %d fast-forwarded\n",
		res.MeasuredInsts, res.WarmingInsts, res.FastFwdInsts)
	if res.SweepCached {
		fmt.Printf("time: %v detailed (functional sweep skipped: launch states loaded from the checkpoint store)\n",
			res.DetailedTime.Round(1e6))
		return
	}
	fmt.Printf("time: %v fast-forward, %v detailed\n",
		res.FastFwdTime.Round(1e6), res.DetailedTime.Round(1e6))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartsim:", err)
	os.Exit(1)
}
