// Command benchjson runs the repository's Go benchmarks and writes the
// results as machine-readable JSON, so CI can archive the performance
// trajectory (units/s, engine speedups, allocs/op) next to the human-
// readable bench log.
//
// Usage:
//
//	benchjson                                  # full suite -> BENCH_pipeline.json
//	benchjson -bench 'EnginePipelined' -out BENCH_engine.json
//	benchjson -pkgs ./internal/cache,./internal/mem -benchtime 100x
//
// The output schema is one object with a `benchmarks` array; each entry
// carries the parsed standard columns (iterations, ns/op, B/op,
// allocs/op) plus every custom metric the benchmark reported via
// b.ReportMetric (speedupX@4workers, units/s, ...), keyed exactly as
// printed.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	BenchRegexp string      `json:"bench_regexp"`
	BenchTime   string      `json:"benchtime"`
	Packages    []string    `json:"packages"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_pipeline.json", "output JSON path")
		benchRe    = flag.String("bench", ".", "benchmark name regexp (go test -bench)")
		benchtime  = flag.String("benchtime", "1x", "per-benchmark budget (go test -benchtime)")
		pkgs       = flag.String("pkgs", "./...", "comma-separated package patterns to benchmark")
		timeout    = flag.String("timeout", "30m", "go test timeout")
		echo       = flag.Bool("echo", true, "mirror the raw go test output to stderr")
		baseline   = flag.String("baseline", "", "baseline report to compare against (a previous output of this tool)")
		regress    = flag.String("regress", "", "comma-separated lower-is-better regression gates as metric:maxPct (e.g. 'snapshotBytes/unit:10'); checked against -baseline after the run")
		regressMin = flag.String("regress-min", "", "comma-separated higher-is-better regression gates as metric:maxPct (e.g. 'units/s:10'): fail when the metric drops more than maxPct below the baseline")
		warnOnly   = flag.Bool("regress-warn", false, "report tripped regression gates as warnings instead of failing")
	)
	flag.Parse()

	gates, err := parseGates(*regress, false)
	if err != nil {
		fatal(err)
	}
	minGates, err := parseGates(*regressMin, true)
	if err != nil {
		fatal(err)
	}
	gates = append(gates, minGates...)

	patterns := strings.Split(*pkgs, ",")
	args := []string{"test", "-run", "^$", "-bench", *benchRe,
		"-benchtime", *benchtime, "-benchmem", "-timeout", *timeout}
	args = append(args, patterns...)

	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	if *echo {
		cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	}
	cmd.Stderr = os.Stderr
	runErr := cmd.Run()

	benches := parse(&buf)
	if runErr != nil && len(benches) == 0 {
		fatal(fmt.Errorf("go test failed with no parsable output: %w", runErr))
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		BenchRegexp: *benchRe,
		BenchTime:   *benchtime,
		Packages:    patterns,
		Benchmarks:  benches,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark results to %s\n", len(benches), *out)
	if runErr != nil {
		fatal(fmt.Errorf("go test reported failure: %w", runErr))
	}

	if *baseline != "" && len(gates) > 0 {
		violations, err := checkRegressions(*baseline, benches, gates)
		if err != nil {
			fatal(err)
		}
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", v)
		}
		if len(violations) > 0 && !*warnOnly {
			os.Exit(1)
		}
	}
}

// gate is one regression bound. Lower-is-better gates (-regress) allow
// the metric to grow at most maxPct percent over the baseline;
// higher-is-better gates (-regress-min) allow it to drop at most
// maxPct percent below. A gate scoped to one benchmark
// ("BenchmarkCaptureDense=units/s:10") ignores the metric elsewhere —
// several benchmarks report units/s, but only some are worth gating.
type gate struct {
	bench  string // empty = every benchmark reporting the metric
	metric string
	maxPct float64
	min    bool // higher-is-better: fire on a drop, not a rise
}

func parseGates(spec string, min bool) ([]gate, error) {
	if spec == "" {
		return nil, nil
	}
	flagName := "-regress"
	if min {
		flagName = "-regress-min"
	}
	var gates []gate
	for _, part := range strings.Split(spec, ",") {
		metric, pct, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad %s entry %q: want [Benchmark=]metric:maxPct", flagName, part)
		}
		p, err := strconv.ParseFloat(pct, 64)
		if err != nil || p < 0 {
			return nil, fmt.Errorf("bad %s bound %q", flagName, pct)
		}
		bench, metric, _ := cutLast(metric, "=")
		gates = append(gates, gate{bench: bench, metric: metric, maxPct: p, min: min})
	}
	return gates, nil
}

// cutLast splits s on the last sep; found=false leaves everything in
// the suffix (no benchmark scope).
func cutLast(s, sep string) (prefix, suffix string, found bool) {
	if i := strings.LastIndex(s, sep); i >= 0 {
		return s[:i], s[i+len(sep):], true
	}
	return "", s, false
}

// checkRegressions compares the fresh results against the baseline
// report, benchmark by benchmark, for each gated metric. Benchmarks or
// metrics absent from either side are skipped — a gate only fires on a
// genuine same-benchmark, same-metric move beyond its bound, in the
// gate's bad direction (an increase for -regress, a drop for
// -regress-min). Deterministic byte counts take tight bounds;
// throughput gates need slack for runner noise.
func checkRegressions(baselinePath string, benches []Benchmark, gates []gate) ([]string, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	baseMetric := make(map[string]float64)
	for _, b := range base.Benchmarks {
		for name, val := range b.Metrics {
			baseMetric[b.Package+"\x00"+b.Name+"\x00"+name] = val
		}
	}
	var violations []string
	for _, b := range benches {
		for _, g := range gates {
			if g.bench != "" && g.bench != b.Name {
				continue
			}
			got, ok := b.Metrics[g.metric]
			if !ok {
				continue
			}
			want, ok := baseMetric[b.Package+"\x00"+b.Name+"\x00"+g.metric]
			if !ok || want <= 0 {
				continue
			}
			if g.min {
				if got < want*(1-g.maxPct/100) {
					violations = append(violations, fmt.Sprintf(
						"%s %s: %.4g vs baseline %.4g (%.1f%%, allowed -%.0f%%)",
						b.Name, g.metric, got, want, (got/want-1)*100, g.maxPct))
				}
			} else if got > want*(1+g.maxPct/100) {
				violations = append(violations, fmt.Sprintf(
					"%s %s: %.4g vs baseline %.4g (+%.1f%%, allowed +%.0f%%)",
					b.Name, g.metric, got, want, (got/want-1)*100, g.maxPct))
			}
		}
	}
	return violations, nil
}

// parse extracts benchmark lines from go test output. A result line has
// the shape:
//
//	BenchmarkName-8   123456   42.0 ns/op   0 B/op   0 allocs/op   3.14 units/s
//
// i.e. a name, an iteration count, then (value, unit) pairs. Package
// attribution comes from the "pkg: ..." header go test prints before
// each package's benchmarks.
func parse(buf *bytes.Buffer) []Benchmark {
	var out []Benchmark
	pkg := ""
	sc := bufio.NewScanner(buf)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Package: pkg, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = val
			}
		}
		out = append(out, b)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
