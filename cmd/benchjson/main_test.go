package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline marshals a Report for checkRegressions to read back.
func writeBaseline(t *testing.T, benches []Benchmark) string {
	t.Helper()
	data, err := json.Marshal(Report{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseGates(t *testing.T) {
	gates, err := parseGates("units/s:10, snapshotBytes/unit:5", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(gates) != 2 || gates[0].metric != "units/s" || gates[0].maxPct != 10 || !gates[0].min {
		t.Fatalf("parsed gates %+v", gates)
	}
	scoped, err := parseGates("BenchmarkCaptureDense=units/s:10", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(scoped) != 1 || scoped[0].bench != "BenchmarkCaptureDense" || scoped[0].metric != "units/s" {
		t.Fatalf("parsed scoped gate %+v", scoped)
	}
	for _, bad := range []string{"units/s", "units/s:x", "units/s:-3"} {
		if _, err := parseGates(bad, false); err == nil {
			t.Errorf("parseGates(%q) accepted", bad)
		}
	}
}

// TestCheckRegressionsBenchScope verifies a scoped gate ignores the
// same metric on other benchmarks.
func TestCheckRegressionsBenchScope(t *testing.T) {
	base := writeBaseline(t, []Benchmark{
		{Name: "BenchmarkCaptureDense", Metrics: map[string]float64{"units/s": 10000}},
		{Name: "BenchmarkEnginePipelined", Metrics: map[string]float64{"units/s": 300}},
	})
	gates := []gate{{bench: "BenchmarkCaptureDense", metric: "units/s", maxPct: 10, min: true}}
	v, err := checkRegressions(base, []Benchmark{
		{Name: "BenchmarkCaptureDense", Metrics: map[string]float64{"units/s": 9500}},
		{Name: "BenchmarkEnginePipelined", Metrics: map[string]float64{"units/s": 100}},
	}, gates)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Errorf("scoped gate fired outside its benchmark: %v", v)
	}
	v, err = checkRegressions(base, []Benchmark{
		{Name: "BenchmarkCaptureDense", Metrics: map[string]float64{"units/s": 5000}},
	}, gates)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "BenchmarkCaptureDense") {
		t.Errorf("scoped gate missed its benchmark: %v", v)
	}
}

func TestCheckRegressionsBothDirections(t *testing.T) {
	base := writeBaseline(t, []Benchmark{{
		Name:    "BenchmarkCaptureDense",
		Package: "repro/internal/checkpoint",
		Metrics: map[string]float64{"units/s": 10000, "snapshotBytes/unit": 14000},
	}})
	gates := []gate{
		{metric: "units/s", maxPct: 10, min: true},
		{metric: "snapshotBytes/unit", maxPct: 10},
	}
	run := func(units, bytes float64) []string {
		t.Helper()
		v, err := checkRegressions(base, []Benchmark{{
			Name:    "BenchmarkCaptureDense",
			Package: "repro/internal/checkpoint",
			Metrics: map[string]float64{"units/s": units, "snapshotBytes/unit": bytes},
		}}, gates)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	if v := run(9500, 14500); len(v) != 0 {
		t.Errorf("within-bound run flagged: %v", v)
	}
	if v := run(8000, 14000); len(v) != 1 || !strings.Contains(v[0], "units/s") {
		t.Errorf("throughput drop not flagged: %v", v)
	}
	if v := run(10000, 16000); len(v) != 1 || !strings.Contains(v[0], "snapshotBytes/unit") {
		t.Errorf("byte growth not flagged: %v", v)
	}
	// A throughput gain must never trip the higher-is-better gate.
	if v := run(20000, 14000); len(v) != 0 {
		t.Errorf("throughput gain flagged: %v", v)
	}
}
