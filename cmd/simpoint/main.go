// Command simpoint runs the SimPoint baseline (profile, cluster, select,
// estimate) on one workload of the synthetic suite and reports the
// selected simulation points and the weighted CPI estimate. Workload
// and machine selection share the sim service's flag vocabulary
// (sim/simflag); the SimPoint estimator itself is the baseline the
// SMARTS comparisons run against, not a sampling run, so it is not
// served through sim.Session.
//
// Usage:
//
//	simpoint -bench gccx -interval 50000 -maxk 10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/simpoint"
	"repro/sim"
	"repro/sim/simflag"
)

func main() {
	var (
		workload = simflag.RegisterWorkload(flag.CommandLine)
		machine  = simflag.RegisterMachine(flag.CommandLine)
		interval = flag.Uint64("interval", 50_000, "profiling interval length")
		maxK     = flag.Int("maxk", 10, "maximum cluster count")
		seed     = flag.Int64("seed", 42, "clustering seed")
	)
	flag.Parse()

	if workload.ListAndExit() {
		return
	}
	cfg, err := machine.Config()
	if err != nil {
		fatal(err)
	}
	sess, err := sim.Open()
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	p, err := sess.Workload(*workload.Bench, *workload.Length)
	if err != nil {
		fatal(err)
	}

	res, sel, err := simpoint.Run(p, cfg, *interval, *maxK, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload %s: %d instructions, %d intervals of %d\n",
		p.Name, p.Length, p.Length / *interval, *interval)
	fmt.Printf("chosen K = %d simulation points:\n", sel.K)
	for i, pt := range sel.Points {
		fmt.Printf("  point %d: interval %d (insts %d..%d), weight %.3f, CPI %.4f\n",
			i, pt.Interval, uint64(pt.Interval)*sel.IntervalLen,
			uint64(pt.Interval+1)*sel.IntervalLen, pt.Weight, res.PerPoint[i])
	}
	fmt.Printf("weighted CPI estimate: %.4f\n", res.CPI)
	fmt.Printf("weighted EPI estimate: %.4f nJ\n", res.EPI)
	fmt.Printf("instructions: %d detailed, %d fast-forwarded\n", res.SimulatedInsts, res.FastFwdInsts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simpoint:", err)
	os.Exit(1)
}
