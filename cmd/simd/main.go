// Command simd is the distributed sampling service: the same SMARTS
// runs as cmd/smartsim, sharded across a worker fleet with a
// bit-identical merged report. One binary serves all three roles:
//
//	simd coordinator -listen :9090 [-workers URL,URL] [-ckpt-dir DIR]
//	simd worker -listen :9091 -coordinator http://HOST:9090 [-parallel N]
//	simd run -coordinator http://HOST:9090 -bench gccx -n 400
//	simd fsck -ckpt-dir DIR [-evict]
//
// The coordinator splits each run's sampling units into contiguous
// shard ranges and merges the streamed results in stream order, so the
// printed estimates match a single-machine run of the checkpointed
// engine (smartsim -parallel) exactly, at any fleet size. Workers
// self-register on startup; the fleet shares one functional-warming
// sweep per (workload, machine, plan) key through the coordinator's
// sweep cache and optional on-disk checkpoint store.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/dist"
	"repro/sim"
	"repro/sim/simflag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simd: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "coordinator":
		coordinatorMain(os.Args[2:])
	case "worker":
		workerMain(os.Args[2:])
	case "run":
		runMain(os.Args[2:])
	case "fsck":
		fsckMain(os.Args[2:])
	case "help", "-h", "-help", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "simd: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  simd coordinator -listen ADDR [-workers URL,...] [-ckpt-dir DIR] [-ckpt-max-bytes N]
                   [-mem-cache-bytes N] [-max-active N] [-max-queue N] [-shards-per-worker N]
                   [-lease D]
  simd worker      -listen ADDR -coordinator URL [-advertise URL] [-parallel N] [-mem-cache-bytes N]
                   [-heartbeat D] [-resume-interval N]
  simd run         -coordinator URL [workload/machine/plan flags] [-eps E -min-units N]
                   [-fallback-local] [-v]
  simd fsck        -ckpt-dir DIR [-evict]
`)
}

func coordinatorMain(args []string) {
	fs := flag.NewFlagSet("simd coordinator", flag.ExitOnError)
	var (
		listen    = fs.String("listen", ":9090", "address to serve the coordinator API on")
		workers   = fs.String("workers", "", "comma-separated worker base URLs to pre-register (workers may also self-register)")
		ckptDir   = fs.String("ckpt-dir", "", "on-disk checkpoint store directory shared across runs (empty = in-memory only)")
		ckptMax   = fs.Int64("ckpt-max-bytes", 0, "LRU size cap for the checkpoint store in bytes (0 = unbounded)")
		memMax    = fs.Int64("mem-cache-bytes", 0, "LRU size cap for the in-memory sweep cache in bytes (0 = unbounded)")
		active    = fs.Int("max-active", 0, "concurrently running runs admitted (0 = default)")
		queue     = fs.Int("max-queue", 0, "runs waiting for a slot before ErrBusy (0 = default, -1 = no queue)")
		perWorker = fs.Int("shards-per-worker", 0, "shard ranges per live worker, for work stealing (0 = default)")
		dflags    = simflag.RegisterDistCoordinator(fs)
	)
	fs.Parse(args)

	coord, err := dist.NewCoordinator(dist.Options{
		StoreDir:        *ckptDir,
		StoreMaxBytes:   *ckptMax,
		MemCacheBytes:   *memMax,
		MaxActive:       *active,
		MaxQueue:        *queue,
		ShardsPerWorker: *perWorker,
		LeaseTTL:        *dflags.Lease,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, url := range strings.Split(*workers, ",") {
		if url = strings.TrimSpace(url); url != "" {
			coord.AddWorker(url)
		}
	}
	log.Printf("coordinator listening on %s", *listen)
	log.Fatal(http.ListenAndServe(*listen, coord.Handler()))
}

func workerMain(args []string) {
	fs := flag.NewFlagSet("simd worker", flag.ExitOnError)
	var (
		listen      = fs.String("listen", ":9091", "address to serve the worker API on")
		coordinator = fs.String("coordinator", "", "coordinator base URL (required)")
		advertise   = fs.String("advertise", "", "base URL the coordinator reaches this worker at (default: derived from -listen on loopback)")
		parallel    = fs.Int("parallel", -1, "replay workers per shard (-1 = all cores)")
		memMax      = fs.Int64("mem-cache-bytes", 0, "LRU size cap for the local sweep cache in bytes (0 = unbounded)")
		dflags      = simflag.RegisterDistWorker(fs)
	)
	fs.Parse(args)
	if *coordinator == "" {
		log.Fatal("worker requires -coordinator URL")
	}
	self := *advertise
	if self == "" {
		if strings.HasPrefix(*listen, ":") {
			self = "http://127.0.0.1" + *listen
		} else {
			self = "http://" + *listen
		}
	}

	w := dist.NewWorker(dist.WorkerOptions{
		Coordinator:    *coordinator,
		Self:           self,
		Workers:        *parallel,
		MemCacheBytes:  *memMax,
		Heartbeat:      *dflags.Heartbeat,
		ResumeInterval: *dflags.ResumeInt,
		Logf:           log.Printf,
	})
	// The coordinator may still be coming up; keep announcing until it
	// answers (Register itself retries transient failures with backoff),
	// in the background so the worker serves shards meanwhile. Once
	// registered, the same goroutine drives the liveness heartbeat.
	go func() {
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err := w.Register(ctx)
			cancel()
			if err == nil {
				log.Printf("registered with %s as %s", *coordinator, self)
				w.Heartbeat(context.Background())
				return
			}
			log.Printf("register with %s failed (%v); retrying", *coordinator, err)
			time.Sleep(time.Second)
		}
	}()
	log.Printf("worker listening on %s", *listen)
	log.Fatal(http.ListenAndServe(*listen, w.Handler()))
}

func runMain(args []string) {
	fs := flag.NewFlagSet("simd run", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL (required)")
		eps         = fs.Float64("eps", 0, "stop measuring once the CPI confidence interval is within ±eps (0 = run the full plan)")
		minUnits    = fs.Uint64("min-units", 0, "minimum measured units before -eps may stop the run")
		verbose     = fs.Bool("v", false, "stream shard and sweep progress to stderr")
		fallback    = fs.Bool("fallback-local", false, "degrade to an in-process run (bit-identical, slower) when the coordinator stays unreachable after retries")
		workload    = simflag.RegisterWorkload(fs)
		machine     = simflag.RegisterMachine(fs)
		plan        = simflag.RegisterPlan(fs)
	)
	fs.Parse(args)

	if workload.ListAndExit() {
		return
	}
	if *coordinator == "" {
		log.Fatal("run requires -coordinator URL")
	}
	cfg, err := machine.Config()
	if err != nil {
		log.Fatal(err)
	}
	req := sim.NewRequest(*workload.Bench, sim.Machine(cfg), sim.Length(*workload.Length))
	if err := plan.Apply(req); err != nil {
		log.Fatal(err)
	}
	if *eps > 0 {
		req.TargetEps, req.MinUnits = *eps, *minUnits
	}
	if *verbose {
		req.Progress = func(ev sim.Progress) {
			switch ev.Kind {
			case sim.EventRunStart:
				log.Printf("run start: %d units over a population of %d", ev.Total, ev.Population)
			case sim.EventShardStart:
				log.Printf("shard %d/%d: %d units", ev.Shard+1, ev.Shards, ev.Total)
			case sim.EventUnitReplayed:
				if ev.ETA > 0 {
					log.Printf("merged %d/%d units (ETA %v)", ev.Replayed, ev.Total, ev.ETA.Round(time.Second))
				}
			case sim.EventShardDone:
				log.Printf("shard %d/%d done (%d units)", ev.Shard+1, ev.Shards, ev.Replayed)
			case sim.EventRetry:
				log.Printf("retrying after transient failure (attempt %d): %s", ev.Attempt, ev.Note)
			case sim.EventFallback:
				log.Printf("coordinator unreachable; falling back to a local run: %s", ev.Note)
			case sim.EventReattach:
				log.Printf("run stream broke; re-attaching (attempt %d): %s", ev.Attempt, ev.Note)
			case sim.EventQuarantine:
				log.Printf("worker quarantined after integrity failure: %s", ev.Note)
			}
		}
	}

	client := dist.NewClient(*coordinator)
	if *fallback {
		local, err := sim.Open()
		if err != nil {
			log.Fatal(err)
		}
		defer local.Close()
		client.Fallback = local
	}
	rep, err := client.Run(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Result()
	fmt.Printf("plan: U=%d W=%d k=%d j=%d warming=%v\n",
		res.Plan.U, res.Plan.W, res.Plan.K, res.Plan.J, res.Plan.Warming)
	// The estimate lines match cmd/smartsim's report byte for byte — CI
	// diffs them against a single-machine run of the same plan.
	fmt.Printf("CPI estimate: %v\n", res.CPIEstimate(sim.Alpha997))
	fmt.Printf("EPI estimate: %v nJ\n", res.EPIEstimate(sim.Alpha997))
	fmt.Printf("instructions: %d measured, %d detailed warming, %d fast-forwarded\n",
		res.MeasuredInsts, res.WarmingInsts, res.FastFwdInsts)
	fmt.Printf("distributed time: %v wall\n", rep.Elapsed.Round(time.Millisecond))
}

// fsckMain scrubs a checkpoint store offline: every committed entry
// and partial journal must decode end to end (format-v4 CRC seals
// included). Problems exit 1 unless -evict removed them all.
func fsckMain(args []string) {
	fs := flag.NewFlagSet("simd fsck", flag.ExitOnError)
	var (
		ckptDir = fs.String("ckpt-dir", "", "checkpoint store directory to scrub (required)")
		evict   = fs.Bool("evict", false, "remove files that fail validation (the store reloads them on demand)")
	)
	fs.Parse(args)
	if *ckptDir == "" {
		log.Fatal("fsck requires -ckpt-dir DIR")
	}
	store, err := checkpoint.OpenStore(*ckptDir)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := store.Verify(*evict)
	if rep != nil {
		for _, p := range rep.Problems {
			fmt.Printf("BAD  %s: %v\n", p.File, p.Err)
		}
		for _, name := range rep.Evicted {
			fmt.Printf("EVICTED %s\n", name)
		}
		fmt.Printf("scanned %d entr%s, %d partial journal(s): %d problem(s)\n",
			rep.Entries, plural(rep.Entries, "y", "ies"), rep.Partials, len(rep.Problems))
	}
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Clean() && len(rep.Evicted) < len(rep.Problems) {
		os.Exit(1)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
