// Command smartsweep regenerates the SMARTS paper's evaluation artifacts
// (Figures 2-8, Tables 4-6) at a chosen scale.
//
// Usage:
//
//	smartsweep -experiment fig6 -config 8-way -scale small
//	smartsweep -experiment all -scale tiny
//	smartsweep -experiment table5 -parallel -1 -ckpt-dir /tmp/ckpt   # sweeps persisted & reused
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/experiments"
	"repro/internal/uarch"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment id (fig2..fig8, table4..table6, or 'all')")
		cfgName  = flag.String("config", "8-way", "machine configuration: 8-way or 16-way")
		scale    = flag.String("scale", "small", "experiment scale: tiny, small, or medium")
		parallel = flag.Int("parallel", 0, "checkpointed parallel engine workers for sampling runs (0 = classic serial path, -1 = all cores)")
		ckptDir  = flag.String("ckpt-dir", "", "on-disk checkpoint store directory; functional sweeps are saved and reused across experiments and invocations (empty = in-memory only; requires -parallel)")
		ckptMax  = flag.Int64("ckpt-max-bytes", 0, "LRU size cap for the checkpoint store in bytes; each save evicts the least recently used entries over the cap (0 = unbounded)")
	)
	flag.Parse()

	cfg, err := uarch.ConfigByName(*cfgName)
	if err != nil {
		fatal(err)
	}
	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	ctx := experiments.NewContext(sc)
	ctx.Parallelism = *parallel
	if *ckptDir != "" {
		if *parallel == 0 {
			fmt.Fprintln(os.Stderr, "smartsweep: -ckpt-dir requires the checkpointed engine; ignoring it on the classic serial path (set -parallel)")
		} else {
			store, err := checkpoint.OpenStore(*ckptDir)
			if err != nil {
				fatal(err)
			}
			store.MaxBytes = *ckptMax
			store.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
			ctx.Ckpt = store
			defer func() {
				hits, misses := store.Stats()
				fmt.Fprintf(os.Stderr, "checkpoint store %s: %d hits, %d misses\n", store.Dir(), hits, misses)
			}()
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		fmt.Printf("==== %s (scale %s) ====\n", name, sc.Name)
		if err := experiments.Run(name, ctx, cfg, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartsweep:", err)
	os.Exit(1)
}
