// Command smartsweep regenerates the SMARTS paper's evaluation artifacts
// (Figures 2-8, Tables 4-6) at a chosen scale, through the sim service
// API (experiment requests against one shared session).
//
// Usage:
//
//	smartsweep -experiment fig6 -config 8-way -scale small
//	smartsweep -experiment all -scale tiny
//	smartsweep -experiment table5 -parallel -1 -ckpt-dir /tmp/ckpt   # sweeps persisted & reused
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/sim"
	"repro/sim/simflag"
)

func main() {
	var (
		machine = simflag.RegisterMachine(flag.CommandLine)
		engine  = simflag.RegisterEngine(flag.CommandLine)
		exp     = flag.String("experiment", "all", "experiment id (fig2..fig8, table4..table6, or 'all')")
		scale   = flag.String("scale", "small", "experiment scale: tiny, small, or medium")
	)
	flag.Parse()

	cfg, err := machine.Config()
	if err != nil {
		fatal(err)
	}
	sess, err := sim.Open(engine.SessionOptions("smartsweep")...)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	defer simflag.ReportStore(sess)

	names := []string{*exp}
	if *exp == "all" {
		names = sim.ExperimentNames()
	}
	for _, name := range names {
		start := time.Now()
		fmt.Printf("==== %s (scale %s) ====\n", name, *scale)
		req := sim.NewExperiment(name, sim.AtScale(*scale), sim.Machine(cfg),
			sim.StreamTo(os.Stdout))
		engine.Apply(req)
		if _, err := sess.Run(context.Background(), req); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartsweep:", err)
	os.Exit(1)
}
