// Confidence: the paper's exact two-step estimation procedure
// (Section 5.1) across several benchmarks.
//
// For each workload, run once with a generic n_init; if the achieved
// 99.7% confidence interval is wider than ±3%, compute n_tuned from the
// measured coefficient of variation and rerun. The output mirrors the
// discussion around the paper's Figure 6 (ammp, vpr and gcc-2 needing
// n_tuned of 66,531 / 23,321 / 21,789 at full scale).
//
//	go run ./examples/confidence
package main

import (
	"fmt"
	"log"

	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/uarch"
)

func main() {
	cfg := uarch.Config8Way()
	const nInit = 300
	const benchLen = 1_500_000

	for _, name := range []string{"swimx", "gzipx", "gccx", "ammpx"} {
		spec, err := program.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := program.Generate(spec, benchLen)
		if err != nil {
			log.Fatal(err)
		}

		pc := smarts.DefaultProcedure(cfg, nInit)
		pr, err := smarts.RunProcedure(prog, cfg, pc)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s (V̂=%.2f):\n", name, pr.InitialCPI.CV)
		fmt.Printf("  step 1: n=%d  -> CPI %v\n", pr.Initial.CPISample().N(), pr.InitialCPI)
		if pr.Tuned == nil {
			fmt.Printf("  ±%.0f%% target met on the first run\n\n", pc.Eps*100)
			continue
		}
		fmt.Printf("  step 2: n_tuned=%d -> CPI %v\n\n", pr.NTuned, pr.TunedCPI)
	}
}
