// Confidence: the paper's exact two-step estimation procedure
// (Section 5.1) across several benchmarks, through the sim API.
//
// For each workload, run once with a generic n_init; if the achieved
// 99.7% confidence interval is wider than ±3%, compute n_tuned from the
// measured coefficient of variation and rerun (sim.Calibrate). The
// output mirrors the discussion around the paper's Figure 6 (ammp, vpr
// and gcc-2 needing n_tuned of 66,531 / 23,321 / 21,789 at full scale).
//
//	go run ./examples/confidence
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	sess, err := sim.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	const nInit = 300
	const benchLen = 1_500_000
	const eps = 0.03

	for _, name := range []string{"swimx", "gzipx", "gccx", "ammpx"} {
		rep, err := sess.Run(context.Background(), sim.NewRequest(name,
			sim.Length(benchLen),
			sim.Units(nInit),
			sim.Calibrate(eps),
			sim.SerialLoop(), // the paper's in-place execution
		))
		if err != nil {
			log.Fatal(err)
		}

		pr := rep.Procedure
		fmt.Printf("%s (V̂=%.2f):\n", name, pr.InitialCPI.CV)
		fmt.Printf("  step 1: n=%d  -> CPI %v\n", pr.Initial.CPISample().N(), pr.InitialCPI)
		if pr.Tuned == nil {
			fmt.Printf("  ±%.0f%% target met on the first run\n\n", eps*100)
			continue
		}
		fmt.Printf("  step 2: n_tuned=%d -> CPI %v\n\n", pr.NTuned, pr.TunedCPI)
	}
}
