// Service: the sim session as a long-running sampling service —
// concurrent requests against one session, shared checkpoint store,
// sweep deduplication, typed progress events, and cancellation.
//
// Three things to watch in the output:
//
//  1. Four concurrent requests for the same workload/plan pay ONE
//     functional sweep: the session's singleflight makes one request
//     the sweeper and the others wait, then load the committed entry
//     (store stats show 1 miss, 3 hits). All four estimates are
//     bit-identical.
//
//  2. Progress events stream per-unit capture/replay counts and the
//     tightening confidence interval — no log scraping.
//
//  3. A request with a deadline is cancelled mid-run and returns
//     context.DeadlineExceeded, leaving the store uncorrupted.
//
//     go run ./examples/service
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/sim"
)

func main() {
	dir, err := os.MkdirTemp("", "sim-service-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sess, err := sim.Open(sim.WithStore(dir), sim.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	// --- 1. Concurrent requests, one sweep -------------------------
	const clients = 4
	var wg sync.WaitGroup
	reports := make([]*sim.Report, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = sess.Run(ctx, sim.NewRequest("gzipx",
				sim.Length(1_000_000), sim.Units(150)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("client %d: %v", i, err)
		}
	}
	identical := true
	for i := 1; i < clients; i++ {
		if reports[i].CPI != reports[0].CPI {
			identical = false
		}
	}
	hits, misses, _ := sess.StoreStats()
	fmt.Printf("%d concurrent clients: CPI %v, bit-identical=%v\n", clients, reports[0].CPI, identical)
	fmt.Printf("checkpoint store: %d sweep (miss), %d reuses (hits)\n\n", misses, hits)

	// --- 2. Progress events ----------------------------------------
	fmt.Println("progress events for a fresh workload:")
	var events int
	rep, err := sess.Run(ctx, sim.NewRequest("mcfx",
		sim.Length(1_000_000), sim.Units(120),
		sim.OnProgress(func(p sim.Progress) {
			events++
			switch p.Kind {
			case sim.EventUnitReplayed:
				if p.Replayed%40 == 0 {
					fmt.Printf("  %3d units folded, CPI so far %v\n", p.Replayed, p.Estimate)
				}
			case sim.EventRunDone:
				fmt.Printf("  done: %d units, CPI %v (cached sweep: %v)\n",
					p.Replayed, p.Estimate, p.Cached)
			}
		}),
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: CPI %v after %d progress events in %v\n\n",
		rep.CPI, events, rep.Elapsed.Round(time.Millisecond))

	// --- 3. Cancellation -------------------------------------------
	dctx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	_, err = sess.Run(dctx, sim.NewRequest("ammpx", sim.Length(2_000_000), sim.Units(400)))
	fmt.Printf("deadline-bound request: err=%v (deadline exceeded: %v)\n",
		err, errors.Is(err, context.DeadlineExceeded))
}
