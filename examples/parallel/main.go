// Parallel: run the same SMARTS sampling plan on the classic serial
// loop and on the checkpointed parallel engine, and compare estimates
// and wall-clock time.
//
// The engine runs one functional-warming sweep that snapshots each
// selected unit's launch state (registers, a copy-on-write memory
// image, cache/TLB/predictor tables), then replays the units across a
// worker pool. Because each unit is a pure function of its snapshot,
// the estimate is bit-identical for every worker count.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
)

func main() {
	spec, err := program.ByName("gccx")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := program.Generate(spec, 4_000_000)
	if err != nil {
		log.Fatal(err)
	}
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(prog.Length, 1000, smarts.RecommendedW(cfg), 500,
		smarts.FunctionalWarming, 0)
	fmt.Printf("workload %s: %d instructions, measuring %d of %d units\n",
		prog.Name, prog.Length, prog.Length/plan.U/plan.K, prog.Length/plan.U)

	// Serial engine run (workers=1): the baseline the parallel run must
	// reproduce byte-for-byte.
	plan.Parallelism = 1
	start := time.Now()
	serial, err := smarts.Run(prog, cfg, plan)
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(start)

	// Parallel run across all cores.
	workers := runtime.GOMAXPROCS(0)
	plan.Parallelism = workers
	start = time.Now()
	parallel, err := smarts.Run(prog, cfg, plan)
	if err != nil {
		log.Fatal(err)
	}
	parallelTime := time.Since(start)

	sCPI := serial.CPIEstimate(stats.Alpha997)
	pCPI := parallel.CPIEstimate(stats.Alpha997)
	fmt.Printf("serial   (1 worker):   CPI %v   in %v\n", sCPI, serialTime.Round(time.Millisecond))
	fmt.Printf("parallel (%d workers): CPI %v   in %v\n", workers, pCPI, parallelTime.Round(time.Millisecond))
	fmt.Printf("identical estimates: %v\n", sCPI == pCPI)
	if parallelTime > 0 {
		fmt.Printf("speedup: %.2fx on the end-to-end run\n",
			float64(serialTime)/float64(parallelTime))
	}

	// With a target confidence interval the engine stops measuring units
	// as soon as the stream-order prefix is confident enough — also
	// deterministically.
	early, err := smarts.RunSampled(prog, cfg, plan, smarts.EngineOptions{
		Workers:   workers,
		TargetEps: 0.20,
		MinUnits:  30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("early termination at ±20%%: kept %d of %d planned units → CPI %v\n",
		len(early.Units), len(parallel.Units), early.CPIEstimate(stats.Alpha997))
}
