// Parallel: run the same SMARTS sampling plan with one worker and with
// one worker per core, and compare estimates and wall-clock time.
//
// The engine runs one functional-warming sweep that snapshots each
// selected unit's launch state (registers, a copy-on-write memory
// image, cache/TLB/predictor tables), then replays the units across a
// worker pool. Because each unit is a pure function of its snapshot,
// the estimate is bit-identical for every worker count.
//
//	go run ./examples/parallel
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/sim"
)

func main() {
	sess, err := sim.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	const bench = "gccx"
	const length = 4_000_000
	prog, err := sess.Workload(bench, length)
	if err != nil {
		log.Fatal(err)
	}
	base := []sim.RequestOption{sim.Length(length), sim.Units(500)}
	fmt.Printf("workload %s: %d instructions\n", prog.Name, prog.Length)

	// Single-worker engine run: the baseline the parallel run must
	// reproduce byte-for-byte.
	start := time.Now()
	serial, err := sess.Run(ctx, sim.NewRequest(bench, append(base, sim.Workers(1))...))
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(start)

	// Parallel run across all cores.
	workers := runtime.GOMAXPROCS(0)
	start = time.Now()
	parallel, err := sess.Run(ctx, sim.NewRequest(bench, append(base, sim.Workers(workers))...))
	if err != nil {
		log.Fatal(err)
	}
	parallelTime := time.Since(start)

	fmt.Printf("serial   (1 worker):   CPI %v   in %v\n", serial.CPI, serialTime.Round(time.Millisecond))
	fmt.Printf("parallel (%d workers): CPI %v   in %v\n", workers, parallel.CPI, parallelTime.Round(time.Millisecond))
	fmt.Printf("identical estimates: %v\n", serial.CPI == parallel.CPI)
	if parallelTime > 0 {
		fmt.Printf("speedup: %.2fx on the end-to-end run\n",
			float64(serialTime)/float64(parallelTime))
	}

	// With a target confidence interval the engine stops measuring units
	// as soon as the stream-order prefix is confident enough — also
	// deterministically.
	early, err := sess.Run(ctx, sim.NewRequest(bench,
		append(base, sim.Workers(workers), sim.EarlyStop(0.20, 30))...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("early termination at ±20%%: kept %d of %d planned units → CPI %v\n",
		len(early.Result().Units), len(parallel.Result().Units), early.CPI)
}
