// SimPoint comparison: the paper's Figure 8 on one benchmark — SMARTS
// versus SimPoint estimating the same ground truth.
//
//	go run ./examples/simpoint_compare
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/program"
	"repro/internal/simpoint"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
)

func main() {
	cfg := uarch.Config8Way()
	spec, err := program.ByName("gccx") // the paper's worst SimPoint case is gcc-2
	if err != nil {
		log.Fatal(err)
	}
	prog, err := program.Generate(spec, 2_000_000)
	if err != nil {
		log.Fatal(err)
	}

	ref, err := smarts.FullRun(prog, cfg, 1000)
	if err != nil {
		log.Fatal(err)
	}
	truth := ref.TrueCPI()
	fmt.Printf("%s: true CPI %.4f\n\n", prog.Name, truth)

	// SimPoint: profile 50k-instruction intervals, cluster with BIC
	// model selection up to K=10, simulate one representative per
	// cluster with cold state.
	spRes, sel, err := simpoint.Run(prog, cfg, 50_000, 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SimPoint (K=%d points):  CPI %.4f  error %+.1f%%  (%d insts detailed)\n",
		sel.K, spRes.CPI, 100*(spRes.CPI-truth)/truth, spRes.SimulatedInsts)

	// SMARTS with the same detailed-instruction budget.
	budgetUnits := spRes.SimulatedInsts / (1000 + smarts.RecommendedW(cfg))
	plan := smarts.PlanForN(prog.Length, 1000, smarts.RecommendedW(cfg), budgetUnits,
		smarts.FunctionalWarming, 0)
	smRes, err := smarts.Run(prog, cfg, plan)
	if err != nil {
		log.Fatal(err)
	}
	est := smRes.CPIEstimate(stats.Alpha997)
	fmt.Printf("SMARTS  (n=%d units):  CPI %.4f  error %+.2f%%  (%d insts detailed)\n",
		est.N, est.Mean, 100*(est.Mean-truth)/truth, smRes.MeasuredInsts+smRes.WarmingInsts)
	fmt.Printf("\nSMARTS additionally bounds its own error: CI ±%.1f%% at 99.7%% confidence ", est.RelCI*100)
	if math.Abs(est.Mean-truth)/truth <= est.RelCI+0.02 {
		fmt.Println("(holds here).")
	} else {
		fmt.Println("(violated here — investigate!).")
	}
	fmt.Println("SimPoint offers no confidence bound; its error is unknowable without the truth.")
}
