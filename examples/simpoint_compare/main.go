// SimPoint comparison: the paper's Figure 8 on one benchmark — SMARTS
// versus SimPoint estimating the same ground truth. The SMARTS side
// runs through the sim API; the SimPoint baseline is the comparison
// subject itself (internal/simpoint).
//
//	go run ./examples/simpoint_compare
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/simpoint"
	"repro/sim"
)

func main() {
	sess, err := sim.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	const bench = "gccx" // the paper's worst SimPoint case is gcc-2
	const length = 2_000_000
	prog, err := sess.Workload(bench, length)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.Config8Way()

	ref, err := sess.Reference(ctx, bench, length, 1000, cfg)
	if err != nil {
		log.Fatal(err)
	}
	truth := ref.TrueCPI()
	fmt.Printf("%s: true CPI %.4f\n\n", prog.Name, truth)

	// SimPoint: profile 50k-instruction intervals, cluster with BIC
	// model selection up to K=10, simulate one representative per
	// cluster with cold state.
	spRes, sel, err := simpoint.Run(prog, cfg, 50_000, 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SimPoint (K=%d points):  CPI %.4f  error %+.1f%%  (%d insts detailed)\n",
		sel.K, spRes.CPI, 100*(spRes.CPI-truth)/truth, spRes.SimulatedInsts)

	// SMARTS with the same detailed-instruction budget, through the
	// service API (serial loop: the paper's execution).
	budgetUnits := spRes.SimulatedInsts / (1000 + sim.RecommendedW(cfg))
	rep, err := sess.Run(ctx, sim.NewRequest(bench,
		sim.Length(length),
		sim.Units(budgetUnits),
		sim.SerialLoop(),
	))
	if err != nil {
		log.Fatal(err)
	}
	smRes := rep.Result()
	est := rep.CPI
	fmt.Printf("SMARTS  (n=%d units):  CPI %.4f  error %+.2f%%  (%d insts detailed)\n",
		est.N, est.Mean, 100*(est.Mean-truth)/truth, smRes.MeasuredInsts+smRes.WarmingInsts)
	fmt.Printf("\nSMARTS additionally bounds its own error: CI ±%.1f%% at 99.7%% confidence ", est.RelCI*100)
	if math.Abs(est.Mean-truth)/truth <= est.RelCI+0.02 {
		fmt.Println("(holds here).")
	} else {
		fmt.Println("(violated here — investigate!).")
	}
	fmt.Println("SimPoint offers no confidence bound; its error is unknowable without the truth.")
}
