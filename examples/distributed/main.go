// Distributed: the sampling service sharded across a worker fleet —
// a loopback coordinator with three in-process workers runs the same
// request as a local session and merges a bit-identical report.
//
// Three things to watch in the output:
//
//  1. The distributed report matches the local checkpointed engine
//     exactly: same units, same CPI/EPI estimates, at any fleet size.
//     Sharding is free because the merge folds units by stream index —
//     the same deterministic order the single-machine collector uses.
//
//  2. The fleet pays ONE functional sweep: whichever worker first
//     claims the run's sweep key becomes the owner, uploads the
//     snapshot set to the coordinator, and the other workers download
//     it (sweep counts sum to 1).
//
//  3. A second run of the same request replays straight from the
//     coordinator's sweep cache — no worker sweeps again.
//
//     go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"reflect"
	"time"

	"repro/internal/dist"
	"repro/sim"
)

func main() {
	// --- Fleet: loopback coordinator + 3 in-process workers ---------
	coord, err := dist.NewCoordinator(dist.Options{})
	if err != nil {
		log.Fatal(err)
	}
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	var workers []*dist.Worker
	for i := 0; i < 3; i++ {
		var w *dist.Worker
		var h http.Handler
		srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			h.ServeHTTP(rw, r)
		}))
		defer srv.Close()
		w = dist.NewWorker(dist.WorkerOptions{
			Coordinator:  coordSrv.URL,
			Self:         srv.URL,
			Workers:      2,
			PollInterval: 5 * time.Millisecond,
		})
		h = w.Handler()
		if err := w.Register(context.Background()); err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
	}
	fmt.Printf("fleet: coordinator %s + %d workers\n\n", coordSrv.URL, len(workers))

	ctx := context.Background()
	request := func() *sim.Request {
		return sim.NewRequest("gzipx", sim.Length(1_000_000), sim.Units(150))
	}

	// --- 1. Bit-identity against the local engine -------------------
	sess, err := sim.Open(sim.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	local, err := sess.Run(ctx, request())
	if err != nil {
		log.Fatal(err)
	}

	client := dist.NewClient(coordSrv.URL)
	remote, err := client.Run(ctx, request())
	if err != nil {
		log.Fatal(err)
	}

	lres, rres := local.Result(), remote.Result()
	fmt.Printf("local  engine: CPI %v over %d units\n", local.CPI, len(lres.Units))
	fmt.Printf("distributed  : CPI %v over %d units\n", remote.CPI, len(rres.Units))
	fmt.Printf("bit-identical: units=%v estimates=%v\n\n",
		reflect.DeepEqual(lres.Units, rres.Units), local.CPI == remote.CPI && local.EPI == remote.EPI)

	// --- 2. Fleet singleflight: one sweep across all workers --------
	var sweeps uint64
	for _, w := range workers {
		sweeps += w.SweepCount()
	}
	fmt.Printf("functional sweeps across the fleet: %d (fleet singleflight)\n\n", sweeps)

	// --- 3. Cached rerun ---------------------------------------------
	again, err := client.Run(ctx, request())
	if err != nil {
		log.Fatal(err)
	}
	var sweeps2 uint64
	for _, w := range workers {
		sweeps2 += w.SweepCount()
	}
	fmt.Printf("rerun: CPI %v, sweep cached=%v, new sweeps=%d, wall %v\n",
		again.CPI, again.Result().SweepCached, sweeps2-sweeps,
		again.Elapsed.Round(time.Millisecond))
}
