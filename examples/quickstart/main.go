// Quickstart: estimate the CPI of one benchmark with SMARTS.
//
// This is the minimal end-to-end use of the library through its public
// API: open a sim session, run one sampling request with functional
// warming, and read the estimate with its confidence interval.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	// 1. A session is the long-lived service object: it owns workload
	//    and checkpoint caches and the execution defaults.
	sess, err := sim.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// 2. Pick a workload from the synthetic SPEC2K-archetype suite; the
	//    session generates (and caches) a ~4M-instruction build of it.
	prog, err := sess.Workload("gccx", 4_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d dynamic instructions\n", prog.Name, prog.Length)

	// 3. Run a systematic sampling request: U=1000-instruction units,
	//    the recommended detailed warming, n=250 units, functional
	//    warming during fast-forward (the request defaults).
	rep, err := sess.Run(context.Background(), sim.NewRequest("gccx",
		sim.Length(4_000_000),
		sim.Units(250),
	))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Read the estimates.
	res := rep.Result()
	fmt.Printf("plan: U=%d W=%d k=%d (measured %d of %d units)\n",
		res.Plan.U, res.Plan.W, res.Plan.K, len(res.Units), res.PopulationUnits)
	fmt.Printf("CPI: %v\n", rep.CPI)
	fmt.Printf("EPI: %v nJ\n", rep.EPI)
	fmt.Printf("simulated in detail: %.2f%% of the stream (%d measured + %d warming)\n",
		100*float64(res.MeasuredInsts+res.WarmingInsts)/float64(prog.Length),
		res.MeasuredInsts, res.WarmingInsts)
}
