// Quickstart: estimate the CPI of one benchmark with SMARTS.
//
// This is the minimal end-to-end use of the library: generate a
// workload, build a sampling plan with functional warming, run it, and
// read the estimate with its confidence interval.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
)

func main() {
	// 1. Pick a workload from the synthetic SPEC2K-archetype suite and
	//    generate a ~2M-instruction build of it.
	spec, err := program.ByName("gccx")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := program.Generate(spec, 4_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s (archetype of SPEC %s): %d dynamic instructions\n",
		prog.Name, spec.Model, prog.Length)

	// 2. Configure the machine: the paper's 8-way out-of-order baseline.
	cfg := uarch.Config8Way()

	// 3. Build a systematic sampling plan: U=1000-instruction units,
	//    detailed warming W=2000, n=400 units, functional warming during
	//    fast-forward. PlanForN derives the sampling interval k from the
	//    benchmark length.
	plan := smarts.PlanForN(prog.Length, 1000, smarts.RecommendedW(cfg), 250,
		smarts.FunctionalWarming, 0)
	fmt.Printf("plan: U=%d W=%d k=%d (measuring %d of %d units)\n",
		plan.U, plan.W, plan.K, prog.Length/plan.U/plan.K, prog.Length/plan.U)

	// 4. Run and report.
	res, err := smarts.Run(prog, cfg, plan)
	if err != nil {
		log.Fatal(err)
	}
	cpi := res.CPIEstimate(stats.Alpha997)
	epi := res.EPIEstimate(stats.Alpha997)
	fmt.Printf("CPI: %v\n", cpi)
	fmt.Printf("EPI: %v nJ\n", epi)
	fmt.Printf("simulated in detail: %.2f%% of the stream (%d measured + %d warming)\n",
		100*float64(res.MeasuredInsts+res.WarmingInsts)/float64(prog.Length),
		res.MeasuredInsts, res.WarmingInsts)
}
