// Warming: reproduce the paper's Section 4 warming study on one
// benchmark — how measurement bias responds to detailed warming W, with
// and without functional warming.
//
// The run prints three regimes:
//
//  1. No warming at all: sampling units start on stale microarchitectural
//     state and an empty pipeline; bias is large (the paper reports up to
//     50% for 10k-instruction units).
//
//  2. Detailed warming only: bias falls as W grows, at growing cost.
//
//  3. Functional warming + small W: bias is bounded to ~2% at W=2000
//     because caches and predictors never go stale (Table 5).
//
//     go run ./examples/warming
package main

import (
	"fmt"
	"log"

	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/uarch"
)

func main() {
	cfg := uarch.Config8Way()
	spec, err := program.ByName("parserx")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := program.Generate(spec, 1_500_000)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: the full-stream detailed simulation.
	ref, err := smarts.FullRun(prog, cfg, 1000)
	if err != nil {
		log.Fatal(err)
	}
	truth := ref.TrueCPI()
	fmt.Printf("%s: true CPI %.4f (full detailed simulation of %d instructions)\n\n",
		prog.Name, truth, prog.Length)

	// Per-unit truth lets us compare each measured unit against its own
	// reference value, isolating warming bias from sampling noise (the
	// same matched-unit method the Table 4/5 experiments use).
	trueUnits, err := ref.UnitCPIs(1000)
	if err != nil {
		log.Fatal(err)
	}

	// Wide unit spacing so warming windows never merge.
	const n = 60
	measure := func(mode smarts.WarmingMode, w uint64) (float64, float64) {
		plan := smarts.PlanForN(prog.Length, 1000, w, n, mode, 0)
		res, err := smarts.Run(prog, cfg, plan)
		if err != nil {
			log.Fatal(err)
		}
		var measured, want float64
		for _, u := range res.Units {
			if u.Index < uint64(len(trueUnits)) {
				measured += u.CPI
				want += trueUnits[u.Index]
			}
		}
		detailedPct := 100 * float64(res.MeasuredInsts+res.WarmingInsts) / float64(prog.Length)
		return (measured - want) / want, detailedPct
	}

	bias, pct := measure(smarts.NoWarming, 0)
	fmt.Printf("no warming:                  bias %+7.2f%%  (detail-simulated %4.1f%%)\n", bias*100, pct)

	for _, w := range []uint64{500, 2000, 8000} {
		bias, pct := measure(smarts.DetailedWarming, w)
		fmt.Printf("detailed warming W=%-6d    bias %+7.2f%%  (detail-simulated %4.1f%%)\n", w, bias*100, pct)
	}

	bias, pct = measure(smarts.FunctionalWarming, smarts.RecommendedW(cfg))
	fmt.Printf("functional warming W=%d:    bias %+7.2f%%  (detail-simulated %4.1f%%)\n",
		smarts.RecommendedW(cfg), bias*100, pct)
}
