// Warming: reproduce the paper's Section 4 warming study on one
// benchmark — how measurement bias responds to detailed warming W, with
// and without functional warming.
//
// The run prints three regimes:
//
//  1. No warming at all: sampling units start on stale microarchitectural
//     state and an empty pipeline; bias is large (the paper reports up to
//     50% for 10k-instruction units).
//
//  2. Detailed warming only: bias falls as W grows, at growing cost.
//
//  3. Functional warming + small W: bias is bounded to ~2% at W=2000
//     because caches and predictors never go stale (Table 5).
//
//     go run ./examples/warming
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	sess, err := sim.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	const bench = "parserx"
	const length = 1_500_000
	cfg := sim.Config8Way()
	prog, err := sess.Workload(bench, length)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: the full-stream detailed simulation.
	ref, err := sess.Reference(ctx, bench, length, 1000, cfg)
	if err != nil {
		log.Fatal(err)
	}
	truth := ref.TrueCPI()
	fmt.Printf("%s: true CPI %.4f (full detailed simulation of %d instructions)\n\n",
		prog.Name, truth, prog.Length)

	// Per-unit truth lets us compare each measured unit against its own
	// reference value, isolating warming bias from sampling noise (the
	// same matched-unit method the Table 4/5 experiments use).
	trueUnits, err := ref.UnitCPIs(1000)
	if err != nil {
		log.Fatal(err)
	}

	// Wide unit spacing so warming windows never merge. The serial loop
	// keeps the paper's in-place execution (units observe the previous
	// unit's leftover state, the effect under study).
	const n = 60
	measure := func(mode sim.WarmingMode, w uint64) (float64, float64) {
		rep, err := sess.Run(ctx, sim.NewRequest(bench,
			sim.Length(length),
			sim.Units(n),
			sim.Warming(mode),
			sim.Warmup(w),
			sim.SerialLoop(),
		))
		if err != nil {
			log.Fatal(err)
		}
		res := rep.Result()
		var measured, want float64
		for _, u := range res.Units {
			if u.Index < uint64(len(trueUnits)) {
				measured += u.CPI
				want += trueUnits[u.Index]
			}
		}
		detailedPct := 100 * float64(res.MeasuredInsts+res.WarmingInsts) / float64(prog.Length)
		return (measured - want) / want, detailedPct
	}

	bias, pct := measure(sim.NoWarming, 0)
	fmt.Printf("no warming:                  bias %+7.2f%%  (detail-simulated %4.1f%%)\n", bias*100, pct)

	for _, w := range []uint64{500, 2000, 8000} {
		bias, pct := measure(sim.DetailedWarming, w)
		fmt.Printf("detailed warming W=%-6d    bias %+7.2f%%  (detail-simulated %4.1f%%)\n", w, bias*100, pct)
	}

	recW := sim.RecommendedW(cfg)
	bias, pct = measure(sim.FunctionalWarming, recW)
	fmt.Printf("functional warming W=%d:    bias %+7.2f%%  (detail-simulated %4.1f%%)\n",
		recW, bias*100, pct)
}
