// Package repro is a from-scratch Go reproduction of "SMARTS:
// Accelerating Microarchitecture Simulation via Rigorous Statistical
// Sampling" (Wunderlich, Wenisch, Falsafi, Hoe — ISCA 2003).
//
// The library lives under internal/: the SMARTS sampling framework
// (internal/smarts), the detailed out-of-order superscalar substrate
// (internal/uarch with internal/cache, internal/bpred, internal/energy),
// the functional simulator and synthetic SPEC2K-archetype workload suite
// (internal/functional, internal/program), the statistics machinery
// (internal/stats), and the SimPoint baseline (internal/simpoint).
//
// Sampling runs execute either on the classic in-place serial loop or
// on the checkpointed parallel engine: internal/checkpoint captures a
// launch snapshot per sampling unit (architectural state, copy-on-write
// memory image, functionally warmed cache/TLB/predictor tables) in one
// functional sweep, and internal/engine replays the units across a
// worker pool with deterministic stream-order aggregation — the same
// estimate, bit for bit, at any worker count (Plan.Parallelism,
// smartsim/smartsweep -parallel).
//
// The engine is a streaming pipeline: the sweep hands each snapshot to
// the workers the moment it is captured, so wall clock approaches
// max(sweep, replay/workers) rather than their sum. Sweeps can be
// persisted to an on-disk checkpoint store (checkpoint.Store,
// Plan.Store, the CLIs' -ckpt-dir) keyed by workload, plan, and
// warm-relevant machine geometry, so one functional sweep is shared
// across runs and across machine configs that differ only in timing,
// width, or energy parameters; one sweep can also capture several
// systematic phase offsets at once (smarts.RunSampledPhases), which the
// bias experiments use to pay one sweep for all phases. Every variant —
// streamed, two-phase, store-loaded, multi-offset — produces
// bit-identical estimates.
//
// Warm snapshots are delta-encoded: the warmed structures maintain
// dirty-block bitmaps inside their zero-allocation update fast paths,
// so each checkpoint copies only the cache/TLB/predictor blocks touched
// since the previous one, with a periodic full keyframe
// (checkpoint.Params.Keyframe) bounding every unit's reconstruction
// chain. Workers materialize launch states on demand
// (checkpoint.Unit.MaterializeWarm), and the store's v2 format persists
// the same keyframe+delta structure (read-compatible with v1 full
// snapshots), shrinking both the in-memory footprint and the on-disk
// bytes of dense plans several-fold while every schedule stays
// bit-identical. The store also keeps an index.json of its entries and
// can enforce an LRU size cap (checkpoint.Store.MaxBytes, the CLIs'
// -ckpt-max-bytes).
//
// Executables are under cmd/, runnable examples under examples/, and the
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation. See README.md, DESIGN.md, and EXPERIMENTS.md.
package repro
