// Package repro is a from-scratch Go reproduction of "SMARTS:
// Accelerating Microarchitecture Simulation via Rigorous Statistical
// Sampling" (Wunderlich, Wenisch, Falsafi, Hoe — ISCA 2003).
//
// # Quickstart: the sim package
//
// The supported API is the top-level sim package — a context-aware,
// session-based front door covering every kind of sampling run:
//
//	sess, err := sim.Open(sim.WithStore(dir))   // long-lived session
//	if err != nil { ... }
//	defer sess.Close()
//
//	rep, err := sess.Run(ctx, sim.NewRequest("gccx",
//		sim.Length(4_000_000),
//		sim.Units(400),
//	))
//	fmt.Println("CPI:", rep.CPI)                // estimate ± CI
//
// One request type reaches plain sampled runs, multi-offset phase
// runs (sim.Phases), the paper's two-step estimation procedure
// (sim.Calibrate), and the experiment registry (sim.NewExperiment).
// Every path honors context cancellation and deadlines; sessions
// deduplicate concurrent functional sweeps for the same checkpoint
// key (singleflight) and emit typed progress events (sim.OnProgress).
// The historical entry points in internal/smarts (Run, RunSampled,
// RunSampledPhases, RunProcedure) remain as deprecated shims that
// produce bit-identical results through the same mechanisms.
//
// # Architecture
//
// The mechanism layers live under internal/: the SMARTS sampling
// framework (internal/smarts), the detailed out-of-order superscalar
// substrate (internal/uarch with internal/cache, internal/bpred,
// internal/energy), the functional simulator and synthetic
// SPEC2K-archetype workload suite (internal/functional,
// internal/program), the statistics machinery (internal/stats), and
// the SimPoint baseline (internal/simpoint).
//
// Sampling runs execute either on the classic in-place serial loop
// (sim.SerialLoop — the paper's original execution) or on the
// checkpointed parallel engine: internal/checkpoint captures a launch
// snapshot per sampling unit (architectural state, copy-on-write
// memory image, functionally warmed cache/TLB/predictor tables) in one
// functional sweep, and internal/engine replays the units across a
// worker pool with deterministic stream-order aggregation — the same
// estimate, bit for bit, at any worker count.
//
// The engine is a streaming pipeline: the sweep hands each snapshot to
// the workers the moment it is captured, so wall clock approaches
// max(sweep, replay/workers) rather than their sum. Sweeps are
// persisted to an on-disk checkpoint store (sim.WithStore, the CLIs'
// -ckpt-dir) keyed by workload, plan, and warm-relevant machine
// geometry, so one functional sweep is shared across runs, across
// machine configs that differ only in timing, width, or energy
// parameters, and across concurrent requests (the session's
// singleflight). One sweep can also capture several systematic phase
// offsets at once (sim.Phases), which the bias experiments use to pay
// one sweep for all phases. Storeless sessions park completed sweeps
// in a session-scoped in-memory cache, so they get the same reuse.
// Snapshots are delta-encoded end to end under one shared
// snapshot/delta-chain contract (internal/delta): dirty-block deltas
// for the warmed structures, dirty-page deltas for memory, periodic
// keyframes (sim.WithKeyframe, the CLIs' -keyframe) bounding
// reconstruction chains, in memory and in the store's v3 format alike.
// Every variant — streamed, two-phase, store-loaded, multi-offset,
// cancelled-and-rerun — produces bit-identical estimates.
//
// # Parallel sweeps and warming bias
//
// The functional sweep itself is the one phase that does not scale
// with workers — functional warming walks the whole dynamic stream in
// order. Two mechanisms attack it. First, the functional interpreter
// runs a pre-decoded fast path: instructions are decoded once into a
// dense side table and the sweep executes from it in a batch loop
// (internal/functional RunDyn, internal/uarch Warmer.ForwardBatch),
// roughly halving sweep cost per instruction with zero allocations on
// the hot path. Second, the sweep can be split into N concurrent
// stream segments (sim.WithSweepParallelism, the CLIs' -sweep-parallel;
// 0 = serial, bit-identical to previous releases): a cheap arch-only
// pioneer pass hands each segment its exact starting architectural
// state and memory image, the segments sweep concurrently, and the
// per-segment unit streams are stitched back in stream order.
//
// Speculative segments trade a measured accuracy cost for that
// speedup: architectural state and memory stay bit-exact (warming
// never alters them), but a segment's caches and predictors start cold
// at its start position — the paper's detailed-warming scenario, whose
// bias Table 5 quantifies. Each segment therefore warms (and discards)
// an overlap of instructions before its first captured unit
// (sim.WithSweepOverlap, -sweep-overlap; default
// checkpoint.DefaultSweepOverlap = 1M instructions, the measured warm
// transient of the full-scale cache hierarchy). The bias-vs-stride
// experiment ("stride" in the experiment registry) measures what
// remains: at the default overlap the worst per-benchmark CPI bias of
// a 4-way parallel sweep stays under 2% (measured ~0.04% at the small
// scale, versus >20% with a 100k overlap — see
// experiments.ParallelSweepBiasThreshold and its test), and on streams
// shorter than the overlap the segment starts clamp to zero, so short
// sweeps degenerate to exact serial behavior, losing speedup but never
// accuracy. Warmed parallel sweeps key separately in the checkpoint
// store (cold-start warm state must not alias a serial sweep's);
// unwarmed captures are bit-identical to serial at any parallelism and
// share the serial key. Journaled sweep resume stays a serial-sweep
// feature: parallelism and Resume are mutually exclusive by
// validation.
//
// Sweeps are also crash-safe: with a store attached, an in-progress
// sweep journals its position every few keyframes as a *.partial
// record (invisible to the committed index), and a rerun of the same
// request resumes from the journal's last keyframe instead of
// resweeping (sim.WithResumeInterval, the CLIs' -resume-interval). The
// resumed unit stream is bit-identical to an uninterrupted sweep, and
// a corrupt journal degrades to a cold sweep — never a wrong result.
//
// # Distributed sampling
//
// internal/dist scales the same runs across machines: a coordinator
// (cmd/simd coordinator) splits a run's sampled units into contiguous
// shard ranges, a worker fleet (cmd/simd worker) replays them through
// the same engine, and a stream-order merge reproduces the
// single-machine report bit for bit at any (machine × worker) count —
// including confidence-targeted early termination, worker failure with
// shard reassignment, and run cancellation. The fleet shares one
// functional sweep per checkpoint key through a claim protocol (the
// session singleflight, fleet-wide) backed by the coordinator's sweep
// cache and optional on-disk store; the format-v3 store codec doubles
// as the wire encoding. The fleet is fault-tolerant end to end: sweep
// owners journal partial progress to the coordinator and renew their
// claim lease, so a worker killed mid-sweep hands the sweep to a peer
// that resumes from the journal; RPCs retry with backoff and jitter;
// workers heartbeat for liveness; and dist.Client — which has the same
// Run(ctx, *Request) shape as sim.Session, so callers swap local for
// distributed execution with one constructor (examples/distributed) —
// can degrade to a bit-identical in-process run when the coordinator
// is unreachable.
//
// The coordinator itself is crash-safe: accepted runs are journaled
// (write-ahead) under the checkpoint store, runs get stable IDs, and
// clients re-attach to a restarted coordinator's recovered runs from
// their last received event. The failure model, end to end:
//
//	what dies                what happens                     what is re-done
//	worker mid-shard         shard suffix requeued to peers   nothing (contiguous prefix kept)
//	sweep owner mid-sweep    lease expires; peer resumes      sweep since last journaled keyframe
//	coordinator mid-run      restart replays run journal      unmerged shard suffixes only
//	client's connection      client re-attaches by run ID     nothing (stream resumes from last event)
//	a bit, anywhere          CRC-32C digest catches it        corrupt frame's shard suffix, on another worker
//	everything at once       journals on disk are the truth   the unjournaled tail, never the whole run
//
// In every row the final report stays bit-identical to an
// uninterrupted local run, and sealed checkpoints (store format v4's
// record and frame checksums, scrubbed offline by simd fsck) make
// silent corruption detectable rather than absorbable.
//
// # Project invariants and how simlint enforces them
//
// The guarantees above are load-bearing — "bit-identical at any
// worker count" and "0 allocs/inst on the sweep hot loops" are easy to
// break with one innocent-looking line. cmd/simlint is an in-repo,
// stdlib-only static analyzer suite (go/ast + go/types, no external
// dependencies) that CI runs between vet and build; it exits nonzero
// on any violation, printing file:line: diagnostics. The invariants it
// enforces:
//
//   - determinism: packages whose outputs must be bit-identical
//     (internal/smarts, checkpoint, engine, dist, stats, delta, and the
//     simulated core) must not let map iteration order, wall-clock
//     reads, or the global math/rand stream shape results. Map
//     iteration that appends into a result is flagged unless the
//     result is sorted afterward; time.Now is flagged unless routed
//     through internal/wallclock, the documented allowlist for
//     telemetry (elapsed-time reporting) and liveness (leases,
//     heartbeats, backoff) — readings that are reported but never fold
//     into an estimate.
//   - hotpath: functions annotated //simlint:hotpath (the per-
//     instruction sweep and replay paths: mem/cache/TLB/bpred accesses,
//     functional Step, delta Mark) must be allocation- and
//     dispatch-free — no make/new/append/closures/defer/interface
//     boxing/fmt — and may only call other hot-path functions or
//     declared //simlint:coldpath <reason> rare paths.
//   - ctx: exported blocking APIs in the service layers (sim, engine,
//     checkpoint, dist) take a context.Context first, don't bury it in
//     structs, and long loops with I/O or RPC calls stay
//     cancellation-aware (ctx check, select, or channel receive).
//   - storekey: structs annotated //simlint:keystruct <HashFunc> (the
//     checkpoint Key/Params and the warm-relevant cache/bpred/uarch
//     geometry) must have every field either referenced by the named
//     key-hash function or annotated //simlint:nonkey <reason> — so
//     adding a config knob without folding it into the store key (a
//     silent cache-aliasing bug) fails CI.
//   - errwrap: fmt.Errorf uses %w (not %v) for error operands so
//     errors.Is/As keep matching, and the checkpoint store/journal and
//     dist layers never discard an error with _ undocumented.
//
// Suppressions are never bare: //simlint:coldpath, ordered, noctx,
// nonkey, and discard all require a reason string, and a directive
// meta-analyzer rejects unknown verbs and missing reasons. The suite
// lives in internal/lint with a seeded-violation test module under
// internal/lint/testdata; run it locally with
//
//	go run ./cmd/simlint ./...
//
// Executables are under cmd/ (their shared flags live in
// sim/simflag), runnable examples under examples/ (examples/service
// shows the concurrent session usage, examples/distributed the
// loopback fleet), and the benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation. See README.md, DESIGN.md, and EXPERIMENTS.md.
package repro
