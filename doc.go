// Package repro is a from-scratch Go reproduction of "SMARTS:
// Accelerating Microarchitecture Simulation via Rigorous Statistical
// Sampling" (Wunderlich, Wenisch, Falsafi, Hoe — ISCA 2003).
//
// The library lives under internal/: the SMARTS sampling framework
// (internal/smarts), the detailed out-of-order superscalar substrate
// (internal/uarch with internal/cache, internal/bpred, internal/energy),
// the functional simulator and synthetic SPEC2K-archetype workload suite
// (internal/functional, internal/program), the statistics machinery
// (internal/stats), and the SimPoint baseline (internal/simpoint).
// Executables are under cmd/, runnable examples under examples/, and the
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation. See README.md, DESIGN.md, and EXPERIMENTS.md.
package repro
