package sim

import (
	"fmt"
	"io"
)

// Request describes one unit of work for Session.Run: a sampling run,
// a multi-offset phase run, a two-step procedure, or an experiment.
// Build one with NewRequest / NewExperiment and functional options;
// the zero values of unset fields select the session defaults noted on
// each field.
type Request struct {
	// Workload names the synthetic workload (see Workloads). Required
	// for every mode except experiments.
	Workload string
	// Length is the workload's target dynamic instruction count
	// (default 2,000,000). Generated workloads are cached per
	// (name, length) in the session.
	Length uint64

	// Config is the simulated machine; a zero Config selects the
	// paper's 8-way baseline.
	Config Config

	// U is the sampling unit size (default 1000 instructions).
	U uint64
	// W is the detailed-warming length (default RecommendedW(Config)).
	W uint64
	// N is the target number of measured units; the sampling interval
	// k is derived from it (PlanForN). Ignored when K is set directly.
	// Default 400.
	N uint64
	// K, when nonzero, fixes the systematic sampling interval
	// directly instead of deriving it from N.
	K uint64
	// J is the systematic phase offset in units.
	J uint64
	// Offsets, when non-empty, requests a multi-offset phase run: the
	// plan is executed at each offset, all phases measured from one
	// shared functional sweep. J is ignored.
	Offsets []uint64
	// Warming selects the fast-forward warming mode. NewRequest
	// defaults it to FunctionalWarming (the paper's recommendation);
	// the type's zero value is NoWarming, so literal Requests start
	// cold unless set.
	Warming WarmingMode
	// MaxUnits, when nonzero, caps the number of measured units.
	MaxUnits int

	// Workers sets the replay worker-pool size: 0 selects the session
	// default, negative one worker per core. Ignored by SerialLoop
	// runs. Results are bit-identical for every worker count.
	Workers int
	// SerialLoop selects the classic in-place serial loop instead of
	// the checkpointed engine: units observe state carried out of the
	// previous unit's detailed simulation, reproducing the paper's
	// original execution (and the repo's historical serial results)
	// exactly. The checkpoint store and sweep deduplication do not
	// apply.
	SerialLoop bool
	// TwoPhase runs the engine's capture-then-replay schedule instead
	// of the streaming pipeline (comparison/benchmark use).
	TwoPhase bool
	// NoStore bypasses the session's checkpoint store for this run.
	NoStore bool

	// TargetEps, when positive, stops measuring units once the CPI
	// estimate's relative confidence interval is within ±TargetEps;
	// MinUnits guards the minimum sample size before stopping.
	TargetEps float64
	MinUnits  uint64
	// Alpha is the confidence parameter for reported estimates and
	// early termination (default Alpha997).
	Alpha float64

	// Procedure, when non-nil, runs the paper's two-step estimation
	// procedure (Section 5.1) instead of a single plan: an initial run
	// at n_init = N, then — if the target interval is missed — a rerun
	// at n_tuned derived from the measured coefficient of variation.
	Procedure *ProcedureSpec

	// Experiment, when non-empty, regenerates one of the paper's
	// figures or tables (see ExperimentNames); Scale picks the sizing
	// ("tiny", "small", "medium"; default "small"). Workload and plan
	// fields are ignored.
	Experiment string
	Scale      string
	// Output, when non-nil, receives the experiment's formatted rows
	// incrementally as they are computed (long experiments stream);
	// Report.ExperimentOutput always carries the full text as well.
	Output io.Writer

	// Progress, when non-nil, receives this run's progress events (in
	// addition to any session-level callback).
	Progress ProgressFunc
}

// ProcedureSpec parameterizes the two-step procedure. Zero fields use
// the paper's recommendations (Eps ±3%, Alpha 99.7%, overshoot 1.2).
type ProcedureSpec struct {
	Eps       float64
	Alpha     float64
	Overshoot float64
}

// RequestOption mutates a Request under construction.
type RequestOption func(*Request)

// NewRequest builds a sampling request for the named workload with
// the paper's recommended defaults (functional warming; U, W, and N
// filled at run time from the session and machine).
func NewRequest(workload string, opts ...RequestOption) *Request {
	req := &Request{Workload: workload, Warming: FunctionalWarming}
	for _, opt := range opts {
		opt(req)
	}
	return req
}

// NewExperiment builds a request that regenerates the named experiment
// (one of ExperimentNames) at the default scale.
func NewExperiment(name string, opts ...RequestOption) *Request {
	req := &Request{Experiment: name}
	for _, opt := range opts {
		opt(req)
	}
	return req
}

// Length sets the workload's target dynamic instruction count.
func Length(n uint64) RequestOption { return func(r *Request) { r.Length = n } }

// Units targets n measured sampling units (the interval k is derived).
func Units(n uint64) RequestOption { return func(r *Request) { r.N = n } }

// UnitSize sets the sampling unit size U.
func UnitSize(u uint64) RequestOption { return func(r *Request) { r.U = u } }

// Warmup sets the detailed-warming length W.
func Warmup(w uint64) RequestOption { return func(r *Request) { r.W = w } }

// Warming selects the fast-forward warming mode.
func Warming(m WarmingMode) RequestOption {
	return func(r *Request) { r.Warming = m }
}

// Interval fixes the systematic sampling interval k directly.
func Interval(k uint64) RequestOption { return func(r *Request) { r.K = k } }

// Phase sets the systematic phase offset j.
func Phase(j uint64) RequestOption { return func(r *Request) { r.J = j } }

// Phases requests a multi-offset run measuring every listed offset
// from one shared sweep.
func Phases(js ...uint64) RequestOption {
	return func(r *Request) { r.Offsets = append([]uint64(nil), js...) }
}

// MaxUnits caps the number of measured units.
func MaxUnits(n int) RequestOption { return func(r *Request) { r.MaxUnits = n } }

// Machine sets the simulated machine configuration.
func Machine(cfg Config) RequestOption { return func(r *Request) { r.Config = cfg } }

// Workers sets the replay worker-pool size for this run (negative: one
// per core).
func Workers(n int) RequestOption { return func(r *Request) { r.Workers = n } }

// SerialLoop selects the classic in-place serial loop (see
// Request.SerialLoop).
func SerialLoop() RequestOption { return func(r *Request) { r.SerialLoop = true } }

// TwoPhase selects the capture-then-replay schedule.
func TwoPhase() RequestOption { return func(r *Request) { r.TwoPhase = true } }

// NoStore bypasses the session's checkpoint store for this run.
func NoStore() RequestOption { return func(r *Request) { r.NoStore = true } }

// EarlyStop stops measuring once the CPI confidence interval is within
// ±eps, after at least minUnits units.
func EarlyStop(eps float64, minUnits uint64) RequestOption {
	return func(r *Request) { r.TargetEps, r.MinUnits = eps, minUnits }
}

// Confidence sets the confidence parameter alpha for estimates.
func Confidence(alpha float64) RequestOption { return func(r *Request) { r.Alpha = alpha } }

// Calibrate runs the two-step procedure targeting a ±eps interval
// (eps 0 uses the paper's ±3%); N becomes n_init.
func Calibrate(eps float64) RequestOption {
	return func(r *Request) { r.Procedure = &ProcedureSpec{Eps: eps} }
}

// Procedure runs the two-step procedure with an explicit spec.
func Procedure(spec ProcedureSpec) RequestOption {
	return func(r *Request) { r.Procedure = &spec }
}

// AtScale picks the experiment scale ("tiny", "small", "medium").
func AtScale(name string) RequestOption { return func(r *Request) { r.Scale = name } }

// StreamTo streams an experiment's formatted output to w as it is
// computed.
func StreamTo(w io.Writer) RequestOption { return func(r *Request) { r.Output = w } }

// OnProgress attaches a per-request progress callback.
func OnProgress(fn ProgressFunc) RequestOption { return func(r *Request) { r.Progress = fn } }

// validate rejects contradictory requests before any work starts.
func (r *Request) validate() error {
	if r == nil {
		return fmt.Errorf("sim: nil request")
	}
	// Confidence parameters are validated at the front door: they are
	// consumed deep inside the engine's collector goroutine, where an
	// out-of-range alpha would otherwise panic mid-run.
	if r.Alpha != 0 && (r.Alpha <= 0 || r.Alpha >= 1) {
		return fmt.Errorf("sim: confidence parameter %v outside (0,1)", r.Alpha)
	}
	if r.Procedure != nil && r.Procedure.Alpha != 0 && (r.Procedure.Alpha <= 0 || r.Procedure.Alpha >= 1) {
		return fmt.Errorf("sim: procedure confidence parameter %v outside (0,1)", r.Procedure.Alpha)
	}
	if r.Experiment != "" {
		if r.Workload != "" {
			return fmt.Errorf("sim: request names both an experiment (%q) and a workload (%q)", r.Experiment, r.Workload)
		}
		if r.Procedure != nil {
			return fmt.Errorf("sim: experiment request cannot also run a procedure")
		}
		return nil
	}
	if r.Workload == "" {
		return fmt.Errorf("sim: request names no workload")
	}
	if r.Procedure != nil && len(r.Offsets) > 0 {
		return fmt.Errorf("sim: procedure request cannot also sweep phase offsets")
	}
	if r.SerialLoop && r.TwoPhase {
		return fmt.Errorf("sim: SerialLoop and TwoPhase are mutually exclusive")
	}
	if r.SerialLoop && r.TargetEps > 0 {
		return fmt.Errorf("sim: early termination (TargetEps) requires the engine; remove SerialLoop")
	}
	return nil
}
