package sim_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/sim"
)

// TestSessionResumesCancelledSweep is the sim-level half of the
// crash/resume acceptance: a run cancelled mid-sweep leaves a resume
// journal in the session's store, and rerunning the same request — in
// a fresh session over the same store directory, as after a process
// crash — transparently completes from the journal with a report
// bit-identical to an uninterrupted run.
func TestSessionResumesCancelledSweep(t *testing.T) {
	dir := t.TempDir()
	open := func() *sim.Session {
		sess, err := sim.Open(sim.WithStore(dir), sim.WithKeyframe(4), sim.WithResumeInterval(1))
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}

	// Uninterrupted baseline, storeless: the measurement a resumed run
	// must reproduce bit for bit.
	bare, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	want, err := bare.Run(context.Background(), cancelRequest())
	if err != nil {
		t.Fatal(err)
	}

	// Run 1: cancel deep into the sweep.
	sess := open()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := cancelRequest()
	req.Progress = func(p sim.Progress) {
		if p.Kind == sim.EventUnitCaptured && p.Captured >= 3*p.Total/4 {
			cancel()
		}
	}
	if _, err := sess.Run(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err %v, want context.Canceled", err)
	}
	sess.Close()
	partials, err := filepath.Glob(filepath.Join(dir, "*.partial"))
	if err != nil {
		t.Fatal(err)
	}
	if len(partials) == 0 {
		t.Fatal("cancelled sweep left no resume journal")
	}

	// Run 2: a fresh session (the post-crash process) reruns the same
	// request and must resume, not resweep.
	sess = open()
	defer sess.Close()
	rep, err := sess.Run(context.Background(), cancelRequest())
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Result()
	if res.SweepCached {
		t.Fatal("rerun hit a committed entry; the cancelled run must not have committed one")
	}
	if res.FastFwdResumedInsts == 0 {
		t.Fatal("rerun swept cold instead of resuming from the journal")
	}
	if executed := res.FastFwdInsts - res.FastFwdResumedInsts; executed*2 > res.FastFwdInsts {
		t.Fatalf("resume saved too little: executed %d of a %d-inst sweep after cancelling at ~3/4",
			executed, res.FastFwdInsts)
	}
	sameMeasurement(t, "resumed run", res, want.Result())

	// The journal is consumed and a complete entry committed: a third
	// run is a plain store hit, still bit-identical.
	if left, err := filepath.Glob(filepath.Join(dir, "*.partial")); err != nil || len(left) != 0 {
		t.Fatalf("resume journal survived completion: %v (err %v)", left, err)
	}
	rep, err = sess.Run(context.Background(), cancelRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result().SweepCached {
		t.Fatal("completed resumed run did not commit a store entry")
	}
	sameMeasurement(t, "store entry after resume", rep.Result(), want.Result())
}
