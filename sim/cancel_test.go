package sim_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/sim"
)

// The cancellation matrix: cancel before the sweep, mid-sweep,
// mid-replay, and mid-procedure-calibration. Each case asserts the run
// returns ctx.Err() promptly (the issue's <100ms budget after the
// cancel), leaks no goroutines, and never leaves a partially written
// COMMITTED entry in the checkpoint store — a committed *.ckpt is
// always a complete sweep. A cancelled sweep may deliberately leave a
// *.partial resume journal (crash-safe partial progress; see
// resume_test.go), which the store's entry loader never confuses with
// a committed entry. The tests run sequentially (goroutine counting is
// process-global).

const promptness = 100 * time.Millisecond

// cancelPlan keeps individual replay units small so workers drain fast
// after a cancel, and dense so every phase of the pipeline is long
// enough to be hit mid-flight.
func cancelRequest(extra ...sim.RequestOption) *sim.Request {
	opts := append([]sim.RequestOption{
		sim.Length(2_000_000),
		sim.UnitSize(500),
		sim.Warmup(500),
		sim.Units(2000),
		sim.Workers(2),
	}, extra...)
	return sim.NewRequest("gccx", opts...)
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (plus slack for runtime helpers).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d alive, baseline %d\n%s", n, baseline,
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// storeEntries lists committed entry files in a store directory.
func storeEntries(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

// stagedTemps lists leftover staging temp files (an aborted writer
// must remove its temp file).
func stagedTemps(t *testing.T, dir string) []string {
	t.Helper()
	all, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps []string
	for _, e := range all {
		if matched, _ := filepath.Match("*.tmp-*", e.Name()); matched {
			tmps = append(tmps, e.Name())
		}
	}
	return tmps
}

// runCancelCase executes req against a fresh store-backed session,
// cancelling via trigger (which receives cancel and each progress
// event), and asserts the shared postconditions. It returns the store
// directory for extra per-case checks.
func runCancelCase(t *testing.T, req *sim.Request, trigger func(cancel context.CancelFunc, p sim.Progress)) string {
	t.Helper()
	dir := t.TempDir()
	sess, err := sim.Open(sim.WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelledAt time.Time
	req.Progress = func(p sim.Progress) {
		if cancelledAt.IsZero() {
			trigger(func() {
				cancelledAt = time.Now()
				cancel()
			}, p)
		}
	}

	baseline := runtime.NumGoroutine()
	rep, err := sess.Run(ctx, req)
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want context.Canceled", rep, err)
	}
	if cancelledAt.IsZero() {
		t.Fatal("trigger never fired: the run finished before the cancellation point was reached")
	}
	if lag := returned.Sub(cancelledAt); lag > promptness {
		t.Fatalf("run returned %v after cancel, want <= %v", lag, promptness)
	}
	waitGoroutines(t, baseline)
	if tmps := stagedTemps(t, dir); len(tmps) > 0 {
		t.Fatalf("aborted store writer left staging files: %v", tmps)
	}
	return dir
}

func TestCancelBeforeSweep(t *testing.T) {
	dir := t.TempDir()
	sess, err := sim.Open(sim.WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any work
	baseline := runtime.NumGoroutine()
	start := time.Now()
	_, err = sess.Run(ctx, cancelRequest())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if lag := time.Since(start); lag > promptness {
		t.Fatalf("pre-cancelled run took %v, want <= %v", lag, promptness)
	}
	waitGoroutines(t, baseline)
	if got := storeEntries(t, dir); len(got) != 0 {
		t.Fatalf("pre-cancelled run committed store entries: %v", got)
	}
}

func TestCancelMidSweep(t *testing.T) {
	dir := runCancelCase(t, cancelRequest(), func(cancel context.CancelFunc, p sim.Progress) {
		// First captured unit: the sweep is running, replay barely
		// started — cancelling here interrupts the sweep mid-stream.
		if p.Kind == sim.EventUnitCaptured {
			cancel()
		}
	})
	// The sweep never completed, so nothing may have been committed —
	// only (at most) a *.partial resume journal.
	if got := storeEntries(t, dir); len(got) != 0 {
		t.Fatalf("cancelled sweep committed store entries: %v", got)
	}
}

func TestCancelMidReplay(t *testing.T) {
	dir := runCancelCase(t, cancelRequest(), func(cancel context.CancelFunc, p sim.Progress) {
		// Cancel once a batch of units has been folded: the pipeline is
		// mid-replay (and typically still mid-sweep).
		if p.Kind == sim.EventUnitReplayed && p.Replayed >= 8 {
			cancel()
		}
	})
	// The sweep may or may not have finished before the cancel; if an
	// entry was committed it must be complete — a fresh session must
	// load it and reproduce the uncancelled baseline bit for bit.
	if entries := storeEntries(t, dir); len(entries) > 0 {
		verifyCommittedEntry(t, dir)
	}
}

// verifyCommittedEntry reruns the cancel request to completion against
// the store directory and checks the entry both loads and yields the
// same measurement as a storeless run.
func verifyCommittedEntry(t *testing.T, dir string) {
	t.Helper()
	fresh, err := sim.Open(sim.WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	fromStore, err := fresh.Run(context.Background(), cancelRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !fromStore.Result().SweepCached {
		t.Fatal("committed entry did not load (treated as a miss)")
	}

	bare, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	want, err := bare.Run(context.Background(), cancelRequest())
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "store entry after cancel", fromStore.Result(), want.Result())
}

func TestCancelMidProcedure(t *testing.T) {
	sawTuned := false
	runCancelCase(t, cancelRequest(sim.Calibrate(0.001)), func(cancel context.CancelFunc, p sim.Progress) {
		// The tiny eps forces the n-calibration rerun; cancel once the
		// tuned stage is replaying — mid-procedure-calibration.
		if p.Stage == "tuned" {
			sawTuned = true
		}
		if sawTuned && p.Kind == sim.EventUnitReplayed {
			cancel()
		}
	})
}

func TestCancelSerialLoop(t *testing.T) {
	// The classic serial loop honors ctx between units and inside
	// fast-forward gaps (no store involved).
	sess, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	baseline := runtime.NumGoroutine()
	var cancelledAt time.Time
	req := cancelRequest(sim.SerialLoop())
	req.Progress = func(p sim.Progress) {
		if p.Kind == sim.EventRunStart && cancelledAt.IsZero() {
			go func() {
				time.Sleep(10 * time.Millisecond)
				cancelledAt = time.Now()
				cancel()
			}()
		}
	}
	_, err = sess.Run(ctx, req)
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if cancelledAt.IsZero() {
		t.Fatal("cancel never fired")
	}
	if lag := returned.Sub(cancelledAt); lag > promptness {
		t.Fatalf("serial loop returned %v after cancel, want <= %v", lag, promptness)
	}
	waitGoroutines(t, baseline)
}

func TestDeadlineExceeded(t *testing.T) {
	sess, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = sess.Run(ctx, cancelRequest())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}
