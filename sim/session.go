package sim

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/experiments"
	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/internal/wallclock"
)

// Session is the long-lived service object behind Session.Run: it owns
// the checkpoint store, caches generated workloads and experiment
// state, supplies execution defaults, and deduplicates concurrent
// sweeps. All methods are safe for concurrent use.
type Session struct {
	set settings

	store *checkpoint.Store
	// sweeps is the in-memory sweep cache of storeless sessions: the
	// singleflight's leader parks its captured launch states here so
	// waiters (and later requests) reuse them without a disk store.
	// Nil when a store is attached — the store already shares sweeps.
	sweeps *checkpoint.MemCache

	mu          sync.Mutex
	closed      bool
	progs       map[progKey]*program.Program
	progFlights map[progKey]*flight
	exps        map[string]*experiments.Context
	flights     map[string]*flight
}

type progKey struct {
	name   string
	length uint64
}

// flight is one in-progress sweep generation for a store key; waiters
// block on done, then find the committed entry in the store.
type flight struct {
	done chan struct{}
}

// settings collects the session defaults the options mutate.
type settings struct {
	storeDir    string
	storeMax    int64
	memCacheMax int64
	workers     int
	alpha       float64
	keyframe    int
	sweepPar    int
	sweepOver   int64
	resumeInt   int
	logf        func(format string, args ...any)
	progress    ProgressFunc
	defLength   uint64
	defUnits    uint64
}

// Option configures a Session at Open.
type Option func(*settings) error

// WithStore attaches an on-disk checkpoint store rooted at dir:
// functional sweeps are persisted and shared across runs of the
// session (and across sessions pointed at the same directory), and
// concurrent requests needing the same sweep are deduplicated.
func WithStore(dir string) Option {
	return func(s *settings) error {
		if dir == "" {
			return fmt.Errorf("sim: empty store directory")
		}
		s.storeDir = dir
		return nil
	}
}

// WithStoreLimit caps the store's total size in bytes;
// least-recently-used entries are evicted on commit.
func WithStoreLimit(maxBytes int64) Option {
	return func(s *settings) error {
		if maxBytes < 0 {
			return fmt.Errorf("sim: negative store limit %d", maxBytes)
		}
		s.storeMax = maxBytes
		return nil
	}
}

// WithMemCacheBytes caps the storeless session's in-memory sweep cache
// at maxBytes of snapshot payload; least-recently-used sweeps are
// evicted on insert (the sweep just captured is never evicted, so the
// run that paid for it always reuses it). 0 — the default — leaves the
// cache unbounded, the pre-existing behavior. Sessions with an on-disk
// store ignore it (the store has its own cap, WithStoreLimit).
func WithMemCacheBytes(maxBytes int64) Option {
	return func(s *settings) error {
		if maxBytes < 0 {
			return fmt.Errorf("sim: negative sweep cache limit %d", maxBytes)
		}
		s.memCacheMax = maxBytes
		return nil
	}
}

// WithWorkers sets the default replay worker-pool size for requests
// that do not set their own (0 or negative: one worker per core).
func WithWorkers(n int) Option {
	return func(s *settings) error {
		s.workers = n
		return nil
	}
}

// WithAlpha sets the default confidence parameter (default Alpha997).
func WithAlpha(alpha float64) Option {
	return func(s *settings) error {
		if alpha <= 0 || alpha >= 1 {
			return fmt.Errorf("sim: confidence parameter %v outside (0,1)", alpha)
		}
		s.alpha = alpha
		return nil
	}
}

// WithKeyframe sets the keyframe interval of delta-encoded checkpoint
// capture: every n-th captured unit carries a full snapshot (warm state
// and memory page table), the units between carry dirty-block and
// dirty-page deltas. 0 keeps the built-in default; 1 disables deltas
// (every unit a full snapshot). The interval trades store-entry and
// in-memory snapshot size against per-replay materialization work; it
// never changes results, and existing store entries stay valid (the
// interval is excluded from the store key).
func WithKeyframe(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("sim: negative keyframe interval %d", n)
		}
		s.keyframe = n
		return nil
	}
}

// WithSweepParallelism runs the session's functional capture sweeps as
// n concurrent stream segments (the speculative parallel sweep): the
// selected launch boundaries are split into n contiguous runs, each
// segment's starting architectural state is fast-forwarded without
// warming, and the segments sweep concurrently. Architectural state
// and memory of every captured unit stay bit-identical to the serial
// sweep; warm state in segments after the first starts cold plus a
// warm-up overlap (WithSweepOverlap), a measured bias — see the
// bias-vs-stride experiment and the "Parallel sweeps and warming bias"
// section of the package documentation. Warmed parallel sweeps key
// separately in the checkpoint store and disable the crash-safe sweep
// journal. 0 and 1 keep the serial sweep (bit-identical to previous
// releases); negative is an error.
func WithSweepParallelism(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("sim: negative sweep parallelism %d", n)
		}
		s.sweepPar = n
		return nil
	}
}

// WithSweepOverlap sets the per-segment warm-up length of parallel
// sweeps: each segment after the first begins warming n instructions
// before its first launch boundary, trading sweep time for cold-start
// bias. 0 keeps the built-in default (checkpoint.DefaultSweepOverlap);
// negative starts segments stone cold. Ignored by serial sweeps.
func WithSweepOverlap(n int64) Option {
	return func(s *settings) error {
		s.sweepOver = n
		return nil
	}
}

// WithResumeInterval sets the crash-safe sweep journal cadence: with a
// store attached, an in-progress functional sweep journals its position
// and captured units every n keyframes, so a run killed or cancelled
// mid-sweep resumes from the journal when the same request reruns —
// producing a unit stream (and therefore a report) bit-identical to an
// uninterrupted run. 0 keeps the built-in default cadence
// (engine.DefaultResumeInterval keyframes); negative disables
// journaling and resume. Sessions without a store never journal.
func WithResumeInterval(n int) Option {
	return func(s *settings) error {
		s.resumeInt = n
		return nil
	}
}

// WithLog routes store and session log lines (hits, misses, evictions)
// to fn; the default discards them.
func WithLog(fn func(format string, args ...any)) Option {
	return func(s *settings) error {
		s.logf = fn
		return nil
	}
}

// WithProgress attaches a session-level progress callback receiving
// every run's events (request-level callbacks are invoked as well).
func WithProgress(fn ProgressFunc) Option {
	return func(s *settings) error {
		s.progress = fn
		return nil
	}
}

// WithDefaults overrides the session's default workload length and
// target unit count for requests that leave them zero.
func WithDefaults(length, units uint64) Option {
	return func(s *settings) error {
		if length == 0 || units == 0 {
			return fmt.Errorf("sim: zero default length or units")
		}
		s.defLength, s.defUnits = length, units
		return nil
	}
}

// Open creates a Session. With no options the session runs fully in
// memory (no checkpoint store), one replay worker per core, at the
// paper's 99.7% confidence reporting.
func Open(opts ...Option) (*Session, error) {
	set := settings{
		alpha:     stats.Alpha997,
		defLength: DefaultLength,
		defUnits:  DefaultUnits,
	}
	for _, opt := range opts {
		if err := opt(&set); err != nil {
			return nil, err
		}
	}
	s := &Session{
		set:         set,
		progs:       make(map[progKey]*program.Program),
		progFlights: make(map[progKey]*flight),
		exps:        make(map[string]*experiments.Context),
		flights:     make(map[string]*flight),
	}
	if set.storeDir != "" {
		store, err := checkpoint.OpenStore(set.storeDir)
		if err != nil {
			return nil, err
		}
		store.MaxBytes = set.storeMax
		store.Logf = set.logf
		s.store = store
	} else {
		// Storeless sessions still deduplicate and reuse sweeps — in
		// memory, for the session's lifetime (bounded when the session
		// asks for it).
		s.sweeps = checkpoint.NewMemCache()
		s.sweeps.MaxBytes = set.memCacheMax
	}
	return s, nil
}

// Close marks the session closed; subsequent Runs fail. In-flight runs
// are not interrupted (cancel their contexts for that).
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// StoreStats returns the checkpoint store's lifetime hit/miss counts;
// ok is false when the session has no store.
func (s *Session) StoreStats() (hits, misses uint64, ok bool) {
	if s.store == nil {
		return 0, 0, false
	}
	hits, misses = s.store.Stats()
	return hits, misses, true
}

// StoreDir returns the checkpoint store directory ("" without a store).
func (s *Session) StoreDir() string {
	if s.store == nil {
		return ""
	}
	return s.store.Dir()
}

// SweepCacheStats returns the in-memory sweep cache's lifetime
// hit/miss/eviction counts (evictions stay zero unless the cache is
// bounded with WithMemCacheBytes); ok is false when the session runs
// with an on-disk store (which shares sweeps instead — see StoreStats).
func (s *Session) SweepCacheStats() (hits, misses, evictions uint64, ok bool) {
	if s.sweeps == nil {
		return 0, 0, 0, false
	}
	hits, misses, evictions = s.sweeps.Stats()
	return hits, misses, evictions, true
}

// Workload returns the generated workload for (name, length), building
// and caching it on first use. length 0 selects the session default.
// Concurrent requests for one (name, length) generate it once; the
// rest wait for the result.
func (s *Session) Workload(name string, length uint64) (*Workload, error) {
	if length == 0 {
		length = s.set.defLength
	}
	key := progKey{name, length}
	for {
		s.mu.Lock()
		if p, ok := s.progs[key]; ok {
			s.mu.Unlock()
			return p, nil
		}
		if f, ok := s.progFlights[key]; ok {
			s.mu.Unlock()
			<-f.done
			continue // the generator finished (or failed); re-check
		}
		f := &flight{done: make(chan struct{})}
		s.progFlights[key] = f
		s.mu.Unlock()

		p, err := generateWorkload(name, length)
		s.mu.Lock()
		if err == nil {
			s.progs[key] = p
		}
		delete(s.progFlights, key)
		s.mu.Unlock()
		close(f.done)
		return p, err
	}
}

func generateWorkload(name string, length uint64) (*program.Program, error) {
	spec, err := program.ByName(name)
	if err != nil {
		return nil, err
	}
	return program.Generate(spec, length)
}

// Reference runs (uncached) the full-stream detailed simulation of the
// workload on cfg — the ground truth sampling estimates are judged
// against (a zero cfg selects the 8-way baseline). chunk is the
// per-chunk measurement granularity. The detailed run is not
// interruptible; ctx is checked before it starts.
func (s *Session) Reference(ctx context.Context, workload string, length, chunk uint64, cfg Config) (*Reference, error) {
	if err := s.runnable(ctx); err != nil {
		return nil, err
	}
	p, err := s.Workload(workload, length)
	if err != nil {
		return nil, err
	}
	return smarts.FullRun(p, s.config(cfg), chunk)
}

// ExperimentNames lists the runnable experiment ids.
func ExperimentNames() []string { return experiments.Names() }

// Report is the result of one Session.Run.
type Report struct {
	// Results holds the sampling runs: one entry for plain requests,
	// one per offset (aligned with Offsets) for multi-offset requests,
	// and the final run of a procedure. Empty for experiments.
	Results []*Result
	// Offsets echoes the phase offsets of a multi-offset request.
	Offsets []uint64
	// Procedure reports both steps of a procedure request.
	Procedure *ProcedureResult
	// ExperimentOutput is the formatted table/figure of an experiment
	// request.
	ExperimentOutput string
	// CPI and EPI are the final estimates at the request's confidence
	// (the first offset's, for multi-offset runs; zero for
	// experiments).
	CPI, EPI Estimate
	// Elapsed is the end-to-end wall-clock time of the request.
	Elapsed time.Duration
}

// Result returns the primary sampling result (the first offset's run,
// or the procedure's final run); nil for experiment reports.
func (r *Report) Result() *Result {
	if len(r.Results) > 0 {
		return r.Results[0]
	}
	return nil
}

// Run executes one request. Every mode honors ctx: cancellation or
// deadline expiry stops the sweep and the worker pool, aborts any
// staged store entry, and returns ctx.Err().
func (s *Session) Run(ctx context.Context, req *Request) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	if err := s.runnable(ctx); err != nil {
		return nil, err
	}
	start := wallclock.Now()

	if req.Experiment != "" {
		rep, err := s.runExperiment(ctx, req)
		if err != nil {
			return nil, err
		}
		rep.Elapsed = wallclock.Since(start)
		return rep, nil
	}

	prog, err := s.Workload(req.Workload, req.Length)
	if err != nil {
		return nil, err
	}
	cfg := s.config(req.Config)
	sink := newProgressSink(s.set.progress, req.Progress)
	alpha := req.Alpha
	if alpha == 0 {
		alpha = s.set.alpha
	}

	var rep *Report
	switch {
	case req.Procedure != nil:
		rep, err = s.runProcedure(ctx, req, prog, cfg, sink, alpha)
	case len(req.Offsets) > 0:
		rep, err = s.runPhases(ctx, req, prog, cfg, sink, alpha)
	default:
		var res *Result
		res, err = s.runPlan(ctx, req, prog, cfg, s.plan(req, prog, cfg), sink, "sample")
		if err == nil {
			rep = &Report{
				Results: []*Result{res},
				CPI:     res.CPIEstimate(alpha),
				EPI:     res.EPIEstimate(alpha),
			}
		}
	}
	if err != nil {
		return nil, err
	}
	rep.Elapsed = wallclock.Since(start)
	return rep, nil
}

// runnable gates new work on session and context state.
func (s *Session) runnable(ctx context.Context) error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("sim: session is closed")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// config resolves the effective machine configuration: only a fully
// zero Config selects the 8-way baseline; a custom literal (even one
// without a Name) is used as given and validated by the run.
func (s *Session) config(cfg Config) Config {
	if cfg == (Config{}) {
		return uarch.Config8Way()
	}
	return cfg
}

// workers resolves the effective worker count for a request.
func (s *Session) workers(req *Request) int {
	n := req.Workers
	if n == 0 {
		n = s.set.workers
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// Package-level request defaults (overridable per session with
// WithDefaults).
const (
	// DefaultLength is the workload length requests fall back to.
	DefaultLength = 2_000_000
	// DefaultUnits is the target sampled-unit count requests fall back
	// to when they set neither K nor N.
	DefaultUnits = 400
)

// ResolvePlan returns the concrete sampling plan req describes against
// the generated workload prog — the request's knobs with the package
// defaults applied (U=1000, the config's recommended W, DefaultUnits
// target units). It is the plan a default-configured Session executes
// for req; the distributed service's coordinator and workers resolve it
// independently so both sides agree on unit indices without shipping a
// plan over the wire.
func ResolvePlan(req *Request, prog *Workload) Plan {
	return resolvePlan(req, prog, resolveConfig(req.Config), DefaultUnits)
}

// resolveConfig is the package-level form of Session.config.
func resolveConfig(cfg Config) Config {
	if cfg == (Config{}) {
		return uarch.Config8Way()
	}
	return cfg
}

// plan builds the sampling plan a request describes, with the session's
// defaults.
func (s *Session) plan(req *Request, prog *program.Program, cfg Config) Plan {
	return resolvePlan(req, prog, cfg, s.set.defUnits)
}

func resolvePlan(req *Request, prog *program.Program, cfg Config, defUnits uint64) Plan {
	u := req.U
	if u == 0 {
		u = 1000
	}
	w := req.W
	if w == 0 && req.Warming != NoWarming {
		w = smarts.RecommendedW(cfg)
	}
	var plan Plan
	if req.K > 0 {
		j := req.J
		if j >= req.K {
			j %= req.K
		}
		plan = Plan{U: u, W: w, K: req.K, J: j, Warming: req.Warming}
	} else {
		n := req.N
		if n == 0 {
			n = defUnits
		}
		plan = smarts.PlanForN(prog.Length, u, w, n, req.Warming, req.J)
	}
	plan.MaxUnits = req.MaxUnits
	return plan
}

// planTotals reports the progress denominators of one plan execution:
// the workload's unit population and the expected sampled-unit count.
func planTotals(plan Plan, prog *program.Program) (pop uint64, total int) {
	if prog == nil || plan.U == 0 {
		return 0, 0
	}
	pop = prog.Length / plan.U
	return pop, plan.CheckpointParams().ExpectedUnits(pop)
}

// etaFrom extrapolates the remaining time of a stage from its observed
// rate: done of total steps since start.
func etaFrom(start time.Time, done, total int) time.Duration {
	if done <= 0 || total <= 0 || done >= total {
		return 0
	}
	elapsed := wallclock.Since(start)
	return time.Duration(float64(elapsed) / float64(done) * float64(total-done))
}

// engineOptions builds the engine options for one plan execution.
func (s *Session) engineOptions(req *Request, sink *progressSink, stage string, offset uint64, plan Plan, prog *program.Program) smarts.EngineOptions {
	opt := smarts.EngineOptions{
		Workers: s.workers(req),
		// The effective alpha (request, else session) drives both the
		// early-termination decision and the reported estimates, so
		// the stop criterion and the report agree.
		Alpha:            s.effAlpha(req),
		TargetEps:        req.TargetEps,
		MinUnits:         req.MinUnits,
		Keyframe:         s.set.keyframe,
		SweepParallelism: s.set.sweepPar,
		SweepOverlap:     s.set.sweepOver,
		ResumeInterval:   s.set.resumeInt,
		TwoPhase:         req.TwoPhase,
	}
	if !req.NoStore {
		opt.Store = s.store
		opt.Cache = s.sweeps
	}
	if sink != nil {
		pop, total := planTotals(plan, prog)
		start := wallclock.Now()
		opt.OnCaptured = func(captured int) {
			sink.emit(Progress{Kind: EventUnitCaptured, Stage: stage, Offset: offset, Captured: captured,
				Population: pop, Total: total, ETA: etaFrom(start, captured, total)})
		}
		// The collector folds units from one goroutine, so the lazily
		// set replay clock needs no synchronization; replay overlaps the
		// sweep in the streamed schedule, making the ETA the remaining
		// pipeline time, not a serial-stage sum.
		var replayStart time.Time
		opt.OnReplayed = func(replayed int, est stats.Estimate) {
			if replayStart.IsZero() {
				replayStart = wallclock.Now()
			}
			sink.emit(Progress{Kind: EventUnitReplayed, Stage: stage, Offset: offset, Replayed: replayed, Estimate: est,
				Population: pop, Total: total, ETA: etaFrom(replayStart, replayed, total)})
		}
	}
	return opt
}

// runPlan executes one sampling plan: the classic serial loop when the
// request asks for it, the checkpointed engine otherwise — with
// concurrent sweeps for the same store key deduplicated.
func (s *Session) runPlan(ctx context.Context, req *Request, prog *program.Program, cfg Config, plan Plan, sink *progressSink, stage string) (*Result, error) {
	sink.emit(Progress{Kind: EventRunStart, Stage: stage, Offset: plan.J})

	var res *Result
	var err error
	if req.SerialLoop {
		plan.Parallelism = 0
		res, err = smarts.RunContext(ctx, prog, cfg, plan)
	} else {
		opt := s.engineOptions(req, sink, stage, plan.J, plan, prog)
		run := func() (*Result, error) {
			return smarts.RunSampledContext(ctx, prog, cfg, plan, opt)
		}
		// Sweep deduplication needs a committable sweep: early-terminated
		// sweeps are incomplete and never persisted, so deduplicating
		// them would only serialize the contenders behind leaders that
		// can never produce a reusable entry. It works for storeless
		// sessions too — the leader parks the captured set in the
		// session's in-memory sweep cache.
		if (opt.Store != nil || opt.Cache != nil) && req.TargetEps <= 0 {
			key := checkpoint.KeyFor(prog, cfg, plan.CheckpointParams())
			res, err = s.singleflight(ctx, key, run)
		} else {
			res, err = run()
		}
	}
	if err != nil {
		return nil, err
	}
	done := Progress{Kind: EventRunDone, Stage: stage, Offset: plan.J, Replayed: len(res.Units), Cached: res.SweepCached}
	if len(res.Units) > 0 {
		done.Estimate = res.CPIEstimate(s.effAlpha(req))
	}
	sink.emit(done)
	return res, nil
}

func (s *Session) effAlpha(req *Request) float64 {
	if req.Alpha != 0 {
		return req.Alpha
	}
	return s.set.alpha
}

// runPhases executes a multi-offset request: all offsets measured from
// one shared sweep (deduplicated under the multi-offset store key).
func (s *Session) runPhases(ctx context.Context, req *Request, prog *program.Program, cfg Config, sink *progressSink, alpha float64) (*Report, error) {
	plan := s.plan(req, prog, cfg)
	// Both execution modes enforce the same offset contract (the
	// engine's multi-offset capture would reject j >= k; the serial
	// loop must not silently wrap instead).
	for _, j := range req.Offsets {
		if j >= plan.K {
			return nil, fmt.Errorf("sim: phase offset %d must be below the sampling interval %d", j, plan.K)
		}
	}
	if req.SerialLoop {
		// The serial loop has no shared-sweep form; run each offset's
		// classic loop in sequence (bit-identical to individual runs).
		results := make([]*Result, len(req.Offsets))
		for i, j := range req.Offsets {
			pj := plan
			pj.J = j
			res, err := s.runPlan(ctx, req, prog, cfg, pj, sink, "sample")
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return phaseReport(req, results, alpha), nil
	}

	sink.emit(Progress{Kind: EventRunStart, Stage: "sample"})
	opt := s.engineOptions(req, sink, "sample", 0, plan, prog)
	if sink != nil {
		// A multi-offset sweep captures every offset's units in one
		// pass, so the capture denominator spans all offsets while each
		// offset's replay counts against its own expectation.
		pop, _ := planTotals(plan, prog)
		sweepParams := plan.CheckpointParams()
		sweepParams.J = 0
		sweepParams.Offsets = req.Offsets
		sweepTotal := sweepParams.ExpectedUnits(pop)
		perOffset := make(map[uint64]int, len(req.Offsets))
		for _, j := range req.Offsets {
			pj := plan.CheckpointParams()
			pj.J = j
			pj.Offsets = nil
			perOffset[j] = pj.ExpectedUnits(pop)
		}
		start := wallclock.Now()
		opt.OnCaptured = func(captured int) {
			sink.emit(Progress{Kind: EventUnitCaptured, Stage: "sample", Captured: captured,
				Population: pop, Total: sweepTotal, ETA: etaFrom(start, captured, sweepTotal)})
		}
		// Replay events of a multi-offset run carry their offset, so a
		// consumer can attribute the per-offset unit counters.
		opt.OnReplayed = nil
		var replayStart time.Time
		replayedAll := 0
		opt.OnPhaseReplayed = func(j uint64, replayed int, est stats.Estimate) {
			if replayStart.IsZero() {
				replayStart = wallclock.Now()
			}
			replayedAll++
			sink.emit(Progress{Kind: EventUnitReplayed, Stage: "sample", Offset: j, Replayed: replayed, Estimate: est,
				Population: pop, Total: perOffset[j], ETA: etaFrom(replayStart, replayedAll, sweepTotal)})
		}
	}
	run := func() ([]*Result, error) {
		return smarts.RunSampledPhasesContext(ctx, prog, cfg, plan, req.Offsets, opt)
	}
	var results []*Result
	var err error
	if (opt.Store != nil || opt.Cache != nil) && req.TargetEps <= 0 {
		params := plan.CheckpointParams()
		params.J = 0
		params.Offsets = req.Offsets
		if verr := params.Validate(); verr != nil {
			return nil, verr
		}
		key := checkpoint.KeyFor(prog, cfg, params)
		results, err = singleflightDo(ctx, s, key, run)
	} else {
		results, err = run()
	}
	if err != nil {
		return nil, err
	}
	if len(results) > 0 {
		done := Progress{Kind: EventRunDone, Stage: "sample", Replayed: len(results[0].Units), Cached: results[0].SweepCached}
		if len(results[0].Units) > 0 {
			done.Estimate = results[0].CPIEstimate(alpha)
		}
		sink.emit(done)
	}
	return phaseReport(req, results, alpha), nil
}

func phaseReport(req *Request, results []*Result, alpha float64) *Report {
	rep := &Report{
		Results: results,
		Offsets: append([]uint64(nil), req.Offsets...),
	}
	if len(results) > 0 {
		rep.CPI = results[0].CPIEstimate(alpha)
		rep.EPI = results[0].EPIEstimate(alpha)
	}
	return rep
}

// runProcedure executes the two-step procedure, reusing the canonical
// calibration loop with the session's plan runner (progress events and
// sweep deduplication included).
func (s *Session) runProcedure(ctx context.Context, req *Request, prog *program.Program, cfg Config, sink *progressSink, alpha float64) (*Report, error) {
	spec := *req.Procedure
	nInit := req.N
	if nInit == 0 {
		nInit = s.set.defUnits
	}
	pc := smarts.DefaultProcedure(cfg, nInit)
	pc.J = req.J
	if req.U != 0 {
		pc.U = req.U
	}
	if req.W != 0 {
		pc.W = req.W
	}
	pc.Warming = req.Warming
	if spec.Eps != 0 {
		pc.Eps = spec.Eps
	}
	// alpha is already the request-else-session effective confidence;
	// an explicit spec overrides both.
	pc.Alpha = alpha
	if spec.Alpha != 0 {
		pc.Alpha = spec.Alpha
	}
	if spec.Overshoot != 0 {
		pc.Overshoot = spec.Overshoot
	}

	runner := func(ctx context.Context, stage string, plan Plan) (*Result, error) {
		return s.runPlan(ctx, req, prog, cfg, plan, sink, stage)
	}
	pr, err := smarts.RunProcedureWith(ctx, prog, cfg, pc, runner)
	if err != nil {
		return nil, err
	}
	final := pr.FinalResult()
	return &Report{
		Results:   []*Result{final},
		Procedure: pr,
		CPI:       pr.Final(),
		EPI:       final.EPIEstimate(pc.Alpha),
	}, nil
}

// runExperiment regenerates one of the paper's figures or tables.
func (s *Session) runExperiment(ctx context.Context, req *Request) (*Report, error) {
	scale := req.Scale
	if scale == "" {
		scale = "small"
	}
	ec, err := s.expContext(scale, req)
	if err != nil {
		return nil, err
	}
	cfg := s.config(req.Config)
	var buf bytes.Buffer
	out := io.Writer(&buf)
	if req.Output != nil {
		out = io.MultiWriter(req.Output, &buf)
	}
	if err := experiments.Run(ctx, req.Experiment, ec, cfg, out); err != nil {
		return nil, err
	}
	return &Report{ExperimentOutput: buf.String()}, nil
}

// expContext returns the session's shared experiment context for a
// (scale, execution mode) pair, creating it on first use. Program and
// reference caches are shared across every experiment request with the
// same pair. SerialLoop requests keep the experiments on the classic
// serial path — the mode that regenerates the historical figures and
// tables exactly.
func (s *Session) expContext(scale string, req *Request) (*experiments.Context, error) {
	sc, err := experiments.ScaleByName(scale)
	if err != nil {
		return nil, err
	}
	par := s.workers(req)
	if req.SerialLoop {
		par = 0
	}
	useStore := !req.NoStore && s.store != nil && par != 0
	// The cache key carries every execution knob baked into the
	// context, so a NoStore request never inherits a store-attached
	// context (or vice versa). Worker counts beyond serial-vs-engine
	// are deliberately NOT in the key: engine results are bit-identical
	// at any count, and the context's expensive reference cache should
	// be shared across them (the first engine request's count sticks).
	mode := "engine"
	if par == 0 {
		mode = "serial"
	}
	key := fmt.Sprintf("%s/%s/store=%v", scale, mode, useStore)
	s.mu.Lock()
	defer s.mu.Unlock()
	if ec, ok := s.exps[key]; ok {
		return ec, nil
	}
	ec := experiments.NewContext(sc)
	ec.Parallelism = par
	if useStore {
		ec.Ckpt = s.store
	}
	s.exps[key] = ec
	return ec, nil
}

// singleflight deduplicates concurrent sweep generation for one store
// key: the first request becomes the leader and runs fn (sweeping and
// committing the entry — to the on-disk store, or to the in-memory
// sweep cache on storeless sessions); concurrent requests for the same
// key wait for the leader, then run fn themselves against the
// now-committed entry (a hit — no second sweep). If the leader failed
// or was cancelled before committing, each waiter retries leadership in
// turn, so one bad run never poisons the key.
func (s *Session) singleflight(ctx context.Context, key checkpoint.Key, fn func() (*Result, error)) (*Result, error) {
	return singleflightDo(ctx, s, key, fn)
}

// sweepAvailable reports whether a committed sweep for key is reusable
// — from the on-disk store or the in-memory cache, whichever the
// session runs with.
func (s *Session) sweepAvailable(key checkpoint.Key) bool {
	if s.store != nil && s.store.Contains(key) {
		return true
	}
	if s.sweeps != nil && s.sweeps.Contains(key) {
		return true
	}
	return false
}

// singleflightDo is the generic form of Session.singleflight (the
// result may be a single run or a per-offset slice).
func singleflightDo[T any](ctx context.Context, s *Session, key checkpoint.Key, fn func() (T, error)) (T, error) {
	hash := key.Hash()
	for {
		s.mu.Lock()
		f, inFlight := s.flights[hash]
		if !inFlight {
			f = &flight{done: make(chan struct{})}
			s.flights[hash] = f
			s.mu.Unlock()

			res, err := fn()
			s.mu.Lock()
			delete(s.flights, hash)
			s.mu.Unlock()
			close(f.done)
			return res, err
		}
		s.mu.Unlock()

		select {
		case <-f.done:
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
		if s.sweepAvailable(key) {
			// The leader committed; run against the entry (a hit).
			return fn()
		}
		// Leader failed or never committed (early termination, error,
		// cancel): loop and contend for leadership.
	}
}
