package sim

import (
	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// The result and configuration vocabulary is shared with the internal
// sampling framework by alias, not by copy: a sim run's Result is the
// same value, bit for bit, that the historical internal/smarts entry
// points produced, which is what keeps the migration to this API a
// pure re-plumbing.

// Result collects one full sampling run; see smarts.Result.
type Result = smarts.Result

// UnitResult is the measurement of one sampling unit.
type UnitResult = smarts.UnitResult

// ProcedureResult reports both steps of the two-step procedure.
type ProcedureResult = smarts.ProcedureResult

// Plan is the low-level sampling-plan shape (U, W, k, j, warming). The
// session builds it from a Request; it is exported so reports remain
// self-describing (Result.Plan).
type Plan = smarts.Plan

// Reference is a full-stream detailed simulation — the ground truth
// sampling estimates are judged against (Session.Reference).
type Reference = smarts.Reference

// Estimate is a statistical point estimate with its confidence
// interval; see stats.Estimate.
type Estimate = stats.Estimate

// Config describes the simulated machine.
type Config = uarch.Config

// Workload is a generated synthetic benchmark program.
type Workload = program.Program

// WorkloadSpec describes one workload archetype of the synthetic
// SPEC2K-style suite.
type WorkloadSpec = program.Spec

// WarmingMode selects how microarchitectural state is treated between
// sampling units.
type WarmingMode = smarts.WarmingMode

// Warming modes; see the smarts package for the paper context.
const (
	NoWarming         = smarts.NoWarming
	DetailedWarming   = smarts.DetailedWarming
	FunctionalWarming = smarts.FunctionalWarming
)

// Alpha997 is the confidence parameter of the paper's "99.7%
// confidence" (three sigma) reporting.
const Alpha997 = stats.Alpha997

// Config8Way returns the paper's 8-way out-of-order baseline machine.
func Config8Way() Config { return uarch.Config8Way() }

// Config16Way returns the paper's 16-way machine.
func Config16Way() Config { return uarch.Config16Way() }

// ConfigByName resolves "8-way" or "16-way".
func ConfigByName(name string) (Config, error) { return uarch.ConfigByName(name) }

// RecommendedW returns the detailed-warming length the paper
// recommends for cfg under functional warming.
func RecommendedW(cfg Config) uint64 { return smarts.RecommendedW(cfg) }

// Workloads lists the synthetic workload suite.
func Workloads() []WorkloadSpec { return program.Suite() }

// WorkloadNames lists the suite's workload names.
func WorkloadNames() []string { return program.Names() }
