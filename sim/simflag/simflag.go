// Package simflag centralizes the command-line flags the cmd/ binaries
// share, so an option added to the sampling service is defined once
// and appears uniformly everywhere. Each Register* helper installs one
// coherent flag group on a FlagSet and returns an accessor struct that
// translates the parsed values into sim requests and session options.
package simflag

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/sim"
)

// Workload groups the workload-selection flags (-bench, -length,
// -list).
type Workload struct {
	Bench  *string
	Length *uint64
	List   *bool
}

// RegisterWorkload installs the workload flags.
func RegisterWorkload(fs *flag.FlagSet) *Workload {
	return &Workload{
		Bench:  fs.String("bench", "gccx", "workload name (see -list)"),
		Length: fs.Uint64("length", 2_000_000, "target dynamic instruction count"),
		List:   fs.Bool("list", false, "list available workloads and exit"),
	}
}

// ListAndExit handles -list: when set, print the suite and return true
// (the caller should exit).
func (w *Workload) ListAndExit() bool {
	if !*w.List {
		return false
	}
	for _, spec := range sim.Workloads() {
		fmt.Printf("%-10s (archetype of %s)\n", spec.Name, spec.Model)
	}
	return true
}

// Machine groups the machine-configuration flags (-config).
type Machine struct {
	Name *string
}

// RegisterMachine installs the machine flags.
func RegisterMachine(fs *flag.FlagSet) *Machine {
	return &Machine{
		Name: fs.String("config", "8-way", "machine configuration: 8-way or 16-way"),
	}
}

// Config resolves the selected machine configuration.
func (m *Machine) Config() (sim.Config, error) { return sim.ConfigByName(*m.Name) }

// Plan groups the sampling-plan flags (-u, -w, -n, -j, -warming).
type Plan struct {
	U       *uint64
	W       *uint64
	N       *uint64
	J       *uint64
	Warming *string
}

// RegisterPlan installs the sampling-plan flags.
func RegisterPlan(fs *flag.FlagSet) *Plan {
	return &Plan{
		U:       fs.Uint64("u", 1000, "sampling unit size U"),
		W:       fs.Uint64("w", 0, "detailed warming W (0 = recommended for config)"),
		N:       fs.Uint64("n", 400, "number of sampling units n"),
		J:       fs.Uint64("j", 0, "systematic phase offset j (units)"),
		Warming: fs.String("warming", "functional", "warming mode: none, detailed, functional"),
	}
}

// WarmingMode parses the -warming selection.
func (p *Plan) WarmingMode() (sim.WarmingMode, error) { return ParseWarming(*p.Warming) }

// Apply copies the plan flags onto a request.
func (p *Plan) Apply(req *sim.Request) error {
	mode, err := p.WarmingMode()
	if err != nil {
		return err
	}
	req.U, req.W, req.N, req.J, req.Warming = *p.U, *p.W, *p.N, *p.J, mode
	if req.U == 0 {
		return fmt.Errorf("unit size -u must be positive")
	}
	return nil
}

// ParseWarming resolves a warming-mode name.
func ParseWarming(s string) (sim.WarmingMode, error) {
	switch s {
	case "none":
		return sim.NoWarming, nil
	case "detailed":
		return sim.DetailedWarming, nil
	case "functional":
		return sim.FunctionalWarming, nil
	}
	return 0, fmt.Errorf("unknown warming mode %q", s)
}

// Engine groups the execution flags every sampling binary shares
// (-parallel, -ckpt-dir, -ckpt-max-bytes, -keyframe, -resume-interval)
// — previously
// duplicated, drifting definitions in each main package.
type Engine struct {
	Parallel     *int
	CkptDir      *string
	CkptMax      *int64
	MemCacheMax  *int64
	Keyframe     *int
	ResumeInt    *int
	SweepPar     *int
	SweepOverlap *int64
}

// RegisterEngine installs the execution flags.
func RegisterEngine(fs *flag.FlagSet) *Engine {
	return &Engine{
		Parallel:     fs.Int("parallel", 0, "checkpointed parallel engine workers (0 = classic serial path, -1 = all cores)"),
		CkptDir:      fs.String("ckpt-dir", "", "on-disk checkpoint store directory; sweeps are saved and reused across runs (empty = in-memory only; requires -parallel)"),
		CkptMax:      fs.Int64("ckpt-max-bytes", 0, "LRU size cap for the checkpoint store in bytes; each save evicts the least recently used entries over the cap (0 = unbounded)"),
		MemCacheMax:  fs.Int64("mem-cache-bytes", 0, "LRU size cap for the in-memory sweep cache of storeless sessions, in snapshot-payload bytes (0 = unbounded; ignored with -ckpt-dir)"),
		Keyframe:     fs.Int("keyframe", 0, "full-snapshot interval of delta-encoded checkpoints: every n-th captured unit is a keyframe, units between carry dirty-block/dirty-page deltas (0 = built-in default, 1 = full snapshots only; results are identical either way)"),
		ResumeInt:    fs.Int("resume-interval", 0, "crash-safe sweep journal cadence in keyframes: with -ckpt-dir, an in-progress sweep journals its position every n keyframes so an interrupted run resumes instead of resweeping (0 = built-in default, negative = disable journaling)"),
		SweepPar:     fs.Int("sweep-parallel", 0, "speculative parallel sweep segments: split the capture sweep into n concurrent stream segments; arch state stays exact, warm state after the first segment starts cold plus -sweep-overlap warm-up instructions (0/1 = serial sweep, bit-identical to previous releases)"),
		SweepOverlap: fs.Int64("sweep-overlap", 0, "per-segment warm-up instructions of a parallel sweep, trading sweep time for cold-start bias (0 = built-in default, negative = stone cold; ignored without -sweep-parallel)"),
	}
}

// SessionOptions translates the engine flags into sim.Open options,
// warning on stderr (prefixed by prog) when -ckpt-dir is combined with
// the serial path, exactly as the old binaries did.
func (e *Engine) SessionOptions(prog string) []sim.Option {
	var opts []sim.Option
	if *e.Keyframe != 0 {
		// Invalid (negative) values flow through so sim.Open reports
		// them, rather than being silently dropped here.
		opts = append(opts, sim.WithKeyframe(*e.Keyframe))
	}
	if *e.MemCacheMax != 0 {
		opts = append(opts, sim.WithMemCacheBytes(*e.MemCacheMax))
	}
	if *e.ResumeInt != 0 {
		opts = append(opts, sim.WithResumeInterval(*e.ResumeInt))
	}
	if *e.SweepPar != 0 {
		opts = append(opts, sim.WithSweepParallelism(*e.SweepPar))
	}
	if *e.SweepOverlap != 0 {
		opts = append(opts, sim.WithSweepOverlap(*e.SweepOverlap))
	}
	if *e.CkptDir != "" {
		if *e.Parallel == 0 {
			fmt.Fprintf(os.Stderr, "%s: -ckpt-dir requires the checkpointed engine; ignoring it on the classic serial path (set -parallel)\n", prog)
		} else {
			opts = append(opts, sim.WithStore(*e.CkptDir))
			if *e.CkptMax != 0 {
				opts = append(opts, sim.WithStoreLimit(*e.CkptMax))
			}
			opts = append(opts, sim.WithLog(func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}))
		}
	}
	return opts
}

// Apply copies the execution flags onto a request: -parallel 0 keeps
// the classic serial loop, n >= 1 runs n workers, negative one per
// core.
func (e *Engine) Apply(req *sim.Request) {
	switch {
	case *e.Parallel == 0:
		req.SerialLoop = true
	default:
		req.Workers = *e.Parallel
	}
}

// Dist groups the fleet fault-tolerance flags of the distributed
// binaries. Each role registers only its own side: the coordinator
// owns the sweep claim lease, the worker owns its heartbeat and
// journal-upload cadence; unregistered fields stay nil.
type Dist struct {
	Heartbeat *time.Duration
	Lease     *time.Duration
	ResumeInt *int
}

// RegisterDistCoordinator installs the coordinator's fault-tolerance
// flags (-lease).
func RegisterDistCoordinator(fs *flag.FlagSet) *Dist {
	return &Dist{
		Lease: fs.Duration("lease", 0, "sweep claim lease: a claimed sweep whose owner neither renews nor finishes within the lease is reclaimed by another worker, which resumes it from the owner's uploaded journal (0 = built-in default)"),
	}
}

// RegisterDistWorker installs the worker's fault-tolerance flags
// (-heartbeat, -resume-interval).
func RegisterDistWorker(fs *flag.FlagSet) *Dist {
	return &Dist{
		Heartbeat: fs.Duration("heartbeat", 0, "liveness heartbeat interval announced to the coordinator, which stops dispatching to a worker silent for 3 intervals (0 = disabled, never expired)"),
		ResumeInt: fs.Int("resume-interval", 0, "crash-safe sweep journal cadence in keyframes: a sweep owner uploads its partial journal to the coordinator every n keyframes so a successor resumes instead of resweeping (0 = built-in default, negative = disable journal uploads)"),
	}
}

// ReportStore prints the session's store hit/miss counters to stderr
// (no-op without a store), matching the old binaries' exit summary.
func ReportStore(sess *sim.Session) {
	if hits, misses, ok := sess.StoreStats(); ok {
		fmt.Fprintf(os.Stderr, "checkpoint store %s: %d hits, %d misses\n", sess.StoreDir(), hits, misses)
	}
}
