// Package sim is the public front door to the SMARTS sampling
// simulator: one context-aware, session-based API covering every kind
// of sampling run the repository supports.
//
// A Session is a long-lived service object owning the shared machinery
// — the on-disk checkpoint store, generated workloads, experiment
// caches, and execution defaults. Open it once, run many requests
// against it, concurrently if desired:
//
//	sess, err := sim.Open(sim.WithStore(dir))
//	if err != nil { ... }
//	defer sess.Close()
//
//	rep, err := sess.Run(ctx, sim.NewRequest("gccx",
//		sim.Length(4_000_000),
//		sim.Units(400),
//	))
//	fmt.Println("CPI:", rep.CPI)
//
// One request type reaches every run mode:
//
//   - a plain sampled run (the default): systematic sampling with
//     functional warming on the checkpointed parallel engine;
//   - a multi-offset phase run (Phases): several systematic phase
//     offsets measured from one shared functional sweep;
//   - the paper's full two-step estimation procedure (Calibrate): run
//     at n_init, check the achieved confidence interval, resize to
//     n_tuned from the measured coefficient of variation, rerun;
//   - an experiment-registry run (NewExperiment): regenerate one of
//     the paper's figures or tables.
//
// Every path honors the context: cancellation or deadline expiry stops
// the functional sweep mid-gap, stops the replay worker pool after
// in-flight units, aborts any staged checkpoint-store entry (the store
// never commits a partial sweep), and returns ctx.Err().
//
// Sessions deduplicate concurrent sweeps: when a store is attached and
// two requests need the same (workload, plan, warm geometry) sweep at
// once, one request performs it and the other waits for the committed
// entry — two simultaneous requests for one workload pay one sweep.
//
// Progress is observable through typed events (OnProgress /
// WithProgress): units captured by the sweep, units folded into the
// deterministic stream-order estimate, and the current confidence
// interval, replacing log-print scraping.
//
// Results are bit-identical to the historical entry points in
// internal/smarts — Result, ProcedureResult, and friends are the same
// types — at any worker count, with the store on or off. The
// internal/smarts entry points remain as deprecated shims.
package sim
