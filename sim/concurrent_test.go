package sim_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/smarts"
	"repro/internal/uarch"
	"repro/sim"
)

// TestSingleflightSweep runs N concurrent identical requests against a
// cold store and asserts exactly one functional sweep happened (one
// store miss; every other request reused the committed entry) and that
// all N reports are bit-identical to the serial baseline.
func TestSingleflightSweep(t *testing.T) {
	p := testProg(t)
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(p.Length, 1000, smarts.RecommendedW(cfg), 80, smarts.FunctionalWarming, 0)
	want, err := smarts.RunSampled(p, cfg, plan, smarts.EngineOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	sess, err := sim.Open(sim.WithStore(t.TempDir()), sim.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const clients = 6
	var wg sync.WaitGroup
	reports := make([]*sim.Report, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = sess.Run(context.Background(),
				sim.NewRequest(testBench, sim.Length(testLen), sim.Units(80)))
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		sameMeasurement(t, "concurrent client", reports[i].Result(), want)
	}

	hits, misses, ok := sess.StoreStats()
	if !ok {
		t.Fatal("session has no store")
	}
	if misses != 1 {
		t.Fatalf("%d store misses (= sweeps), want exactly 1", misses)
	}
	if hits != clients-1 {
		t.Fatalf("%d store hits, want %d", hits, clients-1)
	}
	cached := 0
	for _, rep := range reports {
		if rep.Result().SweepCached {
			cached++
		}
	}
	if cached != clients-1 {
		t.Fatalf("%d reports marked SweepCached, want %d", cached, clients-1)
	}
}

// TestSingleflightStoreless runs N concurrent identical requests on a
// session with no on-disk store and asserts the session-scoped
// in-memory sweep cache gives the same reuse: exactly one sweep (one
// cache miss), every other request replaying the cached launch states,
// all reports bit-identical to the serial baseline — and a later
// sequential request also reusing the sweep.
func TestSingleflightStoreless(t *testing.T) {
	p := testProg(t)
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(p.Length, 1000, smarts.RecommendedW(cfg), 80, smarts.FunctionalWarming, 0)
	want, err := smarts.RunSampled(p, cfg, plan, smarts.EngineOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	sess, err := sim.Open(sim.WithWorkers(2)) // no store
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, _, ok := sess.StoreStats(); ok {
		t.Fatal("storeless session reports a store")
	}

	const clients = 6
	var wg sync.WaitGroup
	reports := make([]*sim.Report, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = sess.Run(context.Background(),
				sim.NewRequest(testBench, sim.Length(testLen), sim.Units(80)))
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		sameMeasurement(t, "storeless concurrent client", reports[i].Result(), want)
	}
	_, misses, _, ok := sess.SweepCacheStats()
	if !ok {
		t.Fatal("storeless session has no sweep cache")
	}
	if misses != 1 {
		t.Fatalf("%d sweep-cache misses (= sweeps), want exactly 1", misses)
	}
	cached := 0
	for _, rep := range reports {
		if rep.Result().SweepCached {
			cached++
		}
	}
	if cached != clients-1 {
		t.Fatalf("%d reports marked SweepCached, want %d", cached, clients-1)
	}

	// A later request reuses the parked sweep outright.
	rep, err := sess.Run(context.Background(),
		sim.NewRequest(testBench, sim.Length(testLen), sim.Units(80)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result().SweepCached {
		t.Fatal("sequential rerun did not reuse the cached sweep")
	}
	sameMeasurement(t, "storeless rerun", rep.Result(), want)

	// Multi-offset requests share the cache too.
	ph := sim.NewRequest(testBench, sim.Length(testLen), sim.Units(60), sim.Phases(0, 2))
	first, err := sess.Run(context.Background(), ph)
	if err != nil {
		t.Fatal(err)
	}
	again, err := sess.Run(context.Background(),
		sim.NewRequest(testBench, sim.Length(testLen), sim.Units(60), sim.Phases(0, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Results[0].SweepCached {
		t.Fatal("repeated phase run did not reuse the cached multi-offset sweep")
	}
	for i := range first.Results {
		sameMeasurement(t, "storeless phases", again.Results[i], first.Results[i])
	}
}

// TestSingleflightPhases exercises the multi-offset path's dedup: two
// concurrent phase requests for one key pay one multi-offset sweep.
func TestSingleflightPhases(t *testing.T) {
	sess, err := sim.Open(sim.WithStore(t.TempDir()), sim.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	req := func() *sim.Request {
		return sim.NewRequest(testBench, sim.Length(testLen), sim.Units(60), sim.Phases(0, 2))
	}
	var wg sync.WaitGroup
	reports := make([]*sim.Report, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = sess.Run(context.Background(), req())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	_, misses, _ := sess.StoreStats()
	if misses != 1 {
		t.Fatalf("%d store misses (= multi-offset sweeps), want exactly 1", misses)
	}
	for i := range reports[0].Results {
		sameMeasurement(t, "phase client", reports[1].Results[i], reports[0].Results[i])
	}
}
