package sim

import (
	"sync"
	"time"
)

// EventKind classifies a progress event.
type EventKind int

// Event kinds, in the order a run emits them.
const (
	// EventRunStart opens a run (or one stage of a procedure run).
	EventRunStart EventKind = iota
	// EventUnitCaptured reports sweep progress: Captured launch
	// snapshots have entered the pipeline. Store hits and two-phase
	// schedules report the total once.
	EventUnitCaptured
	// EventUnitReplayed reports measurement progress: Replayed units
	// have been folded, in stream order, into the deterministic
	// estimate, whose current value is Estimate.
	EventUnitReplayed
	// EventRunDone closes a run (or one stage); Estimate is the final
	// CPI estimate and Cached reports whether the sweep came from the
	// checkpoint store.
	EventRunDone
	// EventShardStart opens one shard of a distributed run: the unit
	// range [Shard, Shards) metadata is carried in Shard/Shards, the
	// range size in Total. Only distributed runs emit shard events.
	EventShardStart
	// EventShardDone closes one shard of a distributed run; Replayed is
	// the number of units the shard streamed back.
	EventShardDone
	// EventRetry reports a transient distributed-service failure being
	// retried with backoff: Note names the operation, Attempt the attempt
	// number just failed (1-based). Only distributed runs emit it.
	EventRetry
	// EventFallback reports the distributed client degrading to a local
	// in-process run after exhausting its retries; Note carries the
	// coordinator error that forced the fallback.
	EventFallback
	// EventReattach reports the distributed client reconnecting to its
	// run's progress stream after losing the coordinator connection
	// (e.g. across a coordinator restart); Attempt counts the reconnect
	// attempts, Note carries the error that severed the stream. The run
	// continues from its journaled state — no work is redone beyond the
	// coordinator's recovery resume point.
	EventReattach
	// EventQuarantine reports the coordinator excluding a worker from
	// dispatch after its shard stream failed integrity verification
	// (corrupt unit digest); Note names the worker. The shard is re-run
	// on another worker, so the report is unaffected.
	EventQuarantine
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventRunStart:
		return "start"
	case EventUnitCaptured:
		return "captured"
	case EventUnitReplayed:
		return "replayed"
	case EventRunDone:
		return "done"
	case EventShardStart:
		return "shard-start"
	case EventShardDone:
		return "shard-done"
	case EventRetry:
		return "retry"
	case EventFallback:
		return "fallback"
	case EventReattach:
		return "reattach"
	case EventQuarantine:
		return "quarantine"
	}
	return "unknown"
}

// Progress is one typed progress event. Events replace the log-print
// scraping of the pre-sim CLIs: a consumer can render a live unit
// counter and the tightening confidence interval from them alone.
type Progress struct {
	// Kind classifies the event.
	Kind EventKind
	// Stage distinguishes the sampling steps of compound runs:
	// "sample" for plain and phase runs, "initial" and "tuned" for the
	// two steps of the procedure.
	Stage string
	// Offset is the systematic phase offset the event belongs to
	// (meaningful for multi-offset requests during replay).
	Offset uint64
	// Captured is the cumulative number of launch snapshots taken by
	// the functional sweep.
	Captured int
	// Replayed is the cumulative number of units folded into the
	// stream-order estimate.
	Replayed int
	// Estimate is the current CPI estimate over the folded prefix
	// (valid on EventUnitReplayed and EventRunDone with Replayed >= 1).
	Estimate Estimate
	// Cached reports that launch states were loaded from the
	// checkpoint store instead of swept (EventRunDone).
	Cached bool
	// Population is the number of sampling units the workload divides
	// into (workload length / U) — the denominator the sweep walks.
	Population uint64
	// Total is the expected number of sampled units for the run (the
	// plan's systematic selection over Population), known up front; the
	// captured count can fall short only when the program halts early.
	Total int
	// ETA estimates the remaining time of the event's stage from its
	// observed rate: Captured over Total on EventUnitCaptured, Replayed
	// over Total on EventUnitReplayed. Zero when no rate is established
	// yet.
	ETA time.Duration
	// Shard and Shards identify the emitting shard of a distributed run
	// (shard events and per-unit events forwarded from workers).
	Shard, Shards int
	// Attempt is the 1-based attempt count of the operation an
	// EventRetry reports.
	Attempt int
	// Note carries human-readable context: the retried operation and its
	// error on EventRetry, the coordinator error on EventFallback.
	Note string
}

// ProgressFunc receives progress events. Callbacks are serialized per
// request (never called concurrently for one Run call) but must be
// fast: they run on the engine's sweep and collector goroutines.
type ProgressFunc func(Progress)

// progressSink fans a run's events to the session- and request-level
// callbacks, serializing them under one mutex (sweep and collector
// goroutines both emit).
type progressSink struct {
	mu  sync.Mutex
	fns []ProgressFunc
}

func newProgressSink(fns ...ProgressFunc) *progressSink {
	sink := &progressSink{}
	for _, fn := range fns {
		if fn != nil {
			sink.fns = append(sink.fns, fn)
		}
	}
	if len(sink.fns) == 0 {
		return nil
	}
	return sink
}

func (p *progressSink) emit(ev Progress) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fn := range p.fns {
		fn(ev)
	}
}
