package sim_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/experiments"
	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/uarch"
	"repro/sim"
)

const (
	testBench = "gzipx"
	testLen   = 600_000
)

func testProg(t testing.TB) *program.Program {
	t.Helper()
	spec, err := program.ByName(testBench)
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Generate(spec, testLen)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// sameMeasurement asserts the measurement halves of two results are
// bit-identical (wall-clock fields are excluded: they legitimately
// differ run to run).
func sameMeasurement(t *testing.T, label string, got, want *sim.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Units, want.Units) {
		t.Fatalf("%s: units differ: got %d units, want %d", label, len(got.Units), len(want.Units))
	}
	if got.PopulationUnits != want.PopulationUnits ||
		got.MeasuredInsts != want.MeasuredInsts ||
		got.WarmingInsts != want.WarmingInsts {
		t.Fatalf("%s: accounting differs: got (%d,%d,%d), want (%d,%d,%d)", label,
			got.PopulationUnits, got.MeasuredInsts, got.WarmingInsts,
			want.PopulationUnits, want.MeasuredInsts, want.WarmingInsts)
	}
}

// TestPlainBitIdentical pins Session.Run's plain engine mode to the
// pre-refactor smarts entry points at several worker counts.
func TestPlainBitIdentical(t *testing.T) {
	p := testProg(t)
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(p.Length, 1000, smarts.RecommendedW(cfg), 80, smarts.FunctionalWarming, 0)
	want, err := smarts.RunSampled(p, cfg, plan, smarts.EngineOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	sess, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, workers := range []int{1, 3} {
		rep, err := sess.Run(context.Background(), sim.NewRequest(testBench,
			sim.Length(testLen), sim.Units(80), sim.Workers(workers)))
		if err != nil {
			t.Fatal(err)
		}
		sameMeasurement(t, "engine", rep.Result(), want)
	}
}

// TestSerialLoopBitIdentical pins the SerialLoop mode to the classic
// in-place serial path.
func TestSerialLoopBitIdentical(t *testing.T) {
	p := testProg(t)
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(p.Length, 1000, smarts.RecommendedW(cfg), 60, smarts.FunctionalWarming, 0)
	want, err := smarts.Run(p, cfg, plan)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rep, err := sess.Run(context.Background(), sim.NewRequest(testBench,
		sim.Length(testLen), sim.Units(60), sim.SerialLoop()))
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "serial", rep.Result(), want)
}

// TestPhasesBitIdentical pins multi-offset requests to
// smarts.RunSampledPhases, offset by offset.
func TestPhasesBitIdentical(t *testing.T) {
	p := testProg(t)
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(p.Length, 1000, smarts.RecommendedW(cfg), 60, smarts.FunctionalWarming, 0)
	js := []uint64{0, 2, 4}
	want, err := smarts.RunSampledPhases(p, cfg, plan, js, smarts.EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	sess, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rep, err := sess.Run(context.Background(), sim.NewRequest(testBench,
		sim.Length(testLen), sim.Units(60), sim.Phases(js...), sim.Workers(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(js) {
		t.Fatalf("got %d phase results, want %d", len(rep.Results), len(js))
	}
	for i := range js {
		sameMeasurement(t, "phase", rep.Results[i], want[i])
	}
}

// TestProcedureBitIdentical pins procedure requests to
// smarts.RunProcedure, both steps.
func TestProcedureBitIdentical(t *testing.T) {
	p := testProg(t)
	cfg := uarch.Config8Way()
	pc := smarts.DefaultProcedure(cfg, 60)
	pc.Eps = 0.05
	pc.Parallelism = 2
	want, err := smarts.RunProcedure(p, cfg, pc)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rep, err := sess.Run(context.Background(), sim.NewRequest(testBench,
		sim.Length(testLen), sim.Units(60), sim.Workers(2), sim.Calibrate(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	pr := rep.Procedure
	if pr == nil {
		t.Fatal("no procedure result")
	}
	sameMeasurement(t, "initial", pr.Initial, want.Initial)
	if (pr.Tuned == nil) != (want.Tuned == nil) {
		t.Fatalf("tuned-run presence differs: sim %v, smarts %v", pr.Tuned != nil, want.Tuned != nil)
	}
	if pr.Tuned != nil {
		sameMeasurement(t, "tuned", pr.Tuned, want.Tuned)
		if pr.NTuned != want.NTuned {
			t.Fatalf("NTuned: got %d want %d", pr.NTuned, want.NTuned)
		}
	}
	if pr.Final() != want.Final() {
		t.Fatalf("final estimate: got %+v want %+v", pr.Final(), want.Final())
	}
}

// TestStoreBitIdentical pins store-backed runs to storeless runs and
// checks the second run reuses the sweep.
func TestStoreBitIdentical(t *testing.T) {
	p := testProg(t)
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(p.Length, 1000, smarts.RecommendedW(cfg), 80, smarts.FunctionalWarming, 0)
	want, err := smarts.RunSampled(p, cfg, plan, smarts.EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	sess, err := sim.Open(sim.WithStore(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	req := func() *sim.Request {
		return sim.NewRequest(testBench, sim.Length(testLen), sim.Units(80), sim.Workers(2))
	}
	first, err := sess.Run(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if first.Result().SweepCached {
		t.Fatal("first run claims a cached sweep on a cold store")
	}
	sameMeasurement(t, "cold store", first.Result(), want)

	second, err := sess.Run(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Result().SweepCached {
		t.Fatal("second run did not reuse the stored sweep")
	}
	sameMeasurement(t, "warm store", second.Result(), want)
}

// TestExperimentMatchesRegistry pins experiment requests to the
// experiments registry output.
func TestExperimentMatchesRegistry(t *testing.T) {
	var buf bytes.Buffer
	ec := experiments.NewContext(experiments.Tiny)
	if err := experiments.Run(context.Background(), "fig4", ec, uarch.Config8Way(), &buf); err != nil {
		t.Fatal(err)
	}

	sess, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rep, err := sess.Run(context.Background(),
		sim.NewExperiment("fig4", sim.AtScale("tiny"), sim.SerialLoop()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExperimentOutput != buf.String() {
		t.Fatalf("experiment output differs:\nsim:\n%s\nregistry:\n%s", rep.ExperimentOutput, buf.String())
	}
}

// TestRequestValidation covers the request sanity checks.
func TestRequestValidation(t *testing.T) {
	sess, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, req := range []*sim.Request{
		nil,
		{},
		sim.NewRequest(""),
		sim.NewRequest("gzipx", sim.Calibrate(0.03), sim.Phases(0, 1)),
		sim.NewExperiment("fig4", func(r *sim.Request) { r.Workload = "gzipx" }),
		sim.NewRequest("gzipx", sim.Confidence(1.5)),
		sim.NewRequest("gzipx", sim.Procedure(sim.ProcedureSpec{Alpha: -1})),
		sim.NewRequest("gzipx", sim.Units(60), sim.Phases(1_000_000)), // offset >= interval
	} {
		if _, err := sess.Run(context.Background(), req); err == nil {
			t.Fatalf("request %+v unexpectedly accepted", req)
		}
	}
	if _, err := sess.Run(context.Background(), sim.NewRequest("no-such-bench")); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestClosedSession checks Close gates new runs.
func TestClosedSession(t *testing.T) {
	sess, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if _, err := sess.Run(context.Background(), sim.NewRequest(testBench)); err == nil {
		t.Fatal("closed session accepted a run")
	}
}

// TestKeyframeOptionBitIdentical pins the WithKeyframe contract: the
// keyframe interval changes only the checkpoint encoding, never the
// measurement — every interval (full snapshots, tight chains, one long
// chain) reports bit-identical results.
func TestKeyframeOptionBitIdentical(t *testing.T) {
	var want *sim.Report
	for _, kf := range []int{0, 1, 3, 64} {
		sess, err := sim.Open(sim.WithWorkers(2), sim.WithKeyframe(kf))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Run(context.Background(),
			sim.NewRequest(testBench, sim.Length(testLen), sim.Units(60)))
		sess.Close()
		if err != nil {
			t.Fatalf("keyframe %d: %v", kf, err)
		}
		if want == nil {
			want = rep
			continue
		}
		sameMeasurement(t, "keyframe interval", rep.Result(), want.Result())
	}
	if _, err := sim.Open(sim.WithKeyframe(-1)); err == nil {
		t.Fatal("negative keyframe accepted")
	}
}
